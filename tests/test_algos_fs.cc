/**
 * @file
 * FS algorithm tests against the independent oracles in reference_algos.h,
 * parameterized over random graph shapes (TEST_P property sweeps).
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/mc.h"
#include "algo/pr.h"
#include "algo/sssp.h"
#include "algo/sswp.h"
#include "ds/dyn_graph.h"
#include "ds/reference.h"
#include "platform/thread_pool.h"
#include "reference_algos.h"
#include "test_util.h"

namespace saga {
namespace {

struct GraphShape
{
    NodeId nodes;
    std::size_t edges;
    std::uint64_t seed;
};

void
PrintTo(const GraphShape &shape, std::ostream *os)
{
    *os << "n" << shape.nodes << "_e" << shape.edges << "_s" << shape.seed;
}

class FsAlgTest : public ::testing::TestWithParam<GraphShape>
{
  protected:
    FsAlgTest() : g_(/*directed=*/true), pool_(3) {}

    void
    SetUp() override
    {
        const GraphShape shape = GetParam();
        EdgeBatch batch =
            test::randomBatch(shape.nodes, shape.edges, shape.seed);
        g_.update(batch, pool_);
        n_ = g_.numNodes();

        // Unique edge list for the oracles.
        std::set<std::pair<NodeId, NodeId>> seen;
        for (const Edge &e : batch.edges()) {
            if (seen.insert({e.src, e.dst}).second)
                unique_edges_.push_back(e);
        }
        out_adj_ = test::buildAdj(unique_edges_, n_);
        ctx_.source = 0;
        ctx_.numNodesHint = n_;
    }

    DynGraph<ReferenceStore> g_;
    ThreadPool pool_;
    NodeId n_ = 0;
    std::vector<Edge> unique_edges_;
    test::AdjList out_adj_;
    AlgContext ctx_;
};

TEST_P(FsAlgTest, BfsMatchesQueueBfs)
{
    std::vector<Bfs::Value> values;
    Bfs::computeFs(g_, pool_, values, ctx_);
    const auto expected = test::refBfs(out_adj_, ctx_.source);
    ASSERT_EQ(values.size(), expected.size());
    for (NodeId v = 0; v < n_; ++v)
        EXPECT_EQ(values[v], expected[v]) << "v=" << v;
}

TEST_P(FsAlgTest, SsspMatchesDijkstra)
{
    std::vector<Sssp::Value> values;
    Sssp::computeFs(g_, pool_, values, ctx_);
    const auto expected = test::refDijkstra(out_adj_, ctx_.source);
    ASSERT_EQ(values.size(), expected.size());
    for (NodeId v = 0; v < n_; ++v) {
        if (std::isinf(expected[v]))
            EXPECT_TRUE(std::isinf(values[v])) << "v=" << v;
        else
            EXPECT_FLOAT_EQ(values[v], expected[v]) << "v=" << v;
    }
}

TEST_P(FsAlgTest, SswpMatchesWidestDijkstra)
{
    std::vector<Sswp::Value> values;
    Sswp::computeFs(g_, pool_, values, ctx_);
    const auto expected = test::refWidest(out_adj_, ctx_.source);
    ASSERT_EQ(values.size(), expected.size());
    for (NodeId v = 0; v < n_; ++v)
        EXPECT_EQ(values[v], expected[v]) << "v=" << v;
}

TEST_P(FsAlgTest, CcMatchesUnionFind)
{
    std::vector<Cc::Value> values;
    Cc::computeFs(g_, pool_, values, ctx_);
    const auto expected = test::refCc(unique_edges_, n_);
    ASSERT_EQ(values.size(), expected.size());
    for (NodeId v = 0; v < n_; ++v)
        EXPECT_EQ(values[v], expected[v]) << "v=" << v;
}

TEST_P(FsAlgTest, McMatchesFixpoint)
{
    std::vector<Mc::Value> values;
    Mc::computeFs(g_, pool_, values, ctx_);
    const auto expected = test::refMc(out_adj_, n_);
    ASSERT_EQ(values.size(), expected.size());
    for (NodeId v = 0; v < n_; ++v)
        EXPECT_EQ(values[v], expected[v]) << "v=" << v;
}

TEST_P(FsAlgTest, PrMatchesPushIteration)
{
    std::vector<Pr::Value> values;
    Pr::computeFs(g_, pool_, values, ctx_);
    const auto expected = test::refPr(out_adj_, n_, ctx_.damping,
                                      ctx_.prTolerance, ctx_.prMaxIters);
    ASSERT_EQ(values.size(), expected.size());
    double l1 = 0;
    for (NodeId v = 0; v < n_; ++v)
        l1 += std::fabs(values[v] - expected[v]);
    // Pull and push iterations stop at slightly different points; both are
    // within the convergence tolerance of the true ranks.
    EXPECT_LT(l1, 4 * ctx_.prTolerance);
}

TEST_P(FsAlgTest, PrRanksSumNearOne)
{
    std::vector<Pr::Value> values;
    Pr::computeFs(g_, pool_, values, ctx_);
    double sum = 0;
    for (NodeId v = 0; v < n_; ++v)
        sum += values[v];
    // Dangling vertices leak rank mass (Table I formula has no dangling
    // redistribution), so the sum is <= 1 but must stay positive.
    EXPECT_GT(sum, 0.1);
    EXPECT_LE(sum, 1.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FsAlgTest,
    ::testing::Values(GraphShape{2, 1, 11}, GraphShape{16, 40, 3},
                      GraphShape{64, 100, 4}, GraphShape{64, 600, 5},
                      GraphShape{256, 500, 6}, GraphShape{256, 3000, 7},
                      GraphShape{1000, 4000, 8},
                      GraphShape{1000, 15000, 9},
                      GraphShape{4000, 12000, 10}));

TEST(FsAlgEdgeCases, EmptyGraph)
{
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(1);
    AlgContext ctx;
    std::vector<Bfs::Value> bfs_values{1, 2, 3};
    Bfs::computeFs(g, pool, bfs_values, ctx);
    EXPECT_TRUE(bfs_values.empty());
    std::vector<Pr::Value> pr_values;
    Pr::computeFs(g, pool, pr_values, ctx);
    EXPECT_TRUE(pr_values.empty());
}

TEST(FsAlgEdgeCases, SourceOutsideGraph)
{
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(1);
    g.update(EdgeBatch({{0, 1, 1.0f}}), pool);
    AlgContext ctx;
    ctx.source = 99; // not yet streamed in
    std::vector<Sssp::Value> values;
    Sssp::computeFs(g, pool, values, ctx);
    ASSERT_EQ(values.size(), 2u);
    EXPECT_TRUE(std::isinf(values[0]));
    EXPECT_TRUE(std::isinf(values[1]));
}

TEST(FsAlgEdgeCases, DisconnectedComponents)
{
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(2);
    g.update(EdgeBatch({{0, 1, 1.0f}, {2, 3, 1.0f}, {4, 5, 1.0f}}), pool);
    AlgContext ctx;
    std::vector<Cc::Value> values;
    Cc::computeFs(g, pool, values, ctx);
    EXPECT_EQ(values[0], values[1]);
    EXPECT_EQ(values[2], values[3]);
    EXPECT_EQ(values[4], values[5]);
    EXPECT_NE(values[0], values[2]);
    EXPECT_NE(values[2], values[4]);
}

} // namespace
} // namespace saga
