/** @file CSR baseline tests: build correctness, rebuild-on-update. */

#include <gtest/gtest.h>

#include "algo/bfs.h"
#include "ds/csr.h"
#include "ds/dyn_graph.h"
#include "ds/reference.h"
#include "platform/thread_pool.h"
#include "test_util.h"

namespace saga {
namespace {

TEST(CsrGraph, EmptyGraph)
{
    const CsrGraph g = CsrGraph::build({}, 0);
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(CsrGraph, BuildSortsRows)
{
    const CsrGraph g = CsrGraph::build(
        {{0, 3, 1.0f}, {0, 1, 2.0f}, {0, 2, 3.0f}, {2, 0, 4.0f}}, 4);
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 1u);

    std::vector<NodeId> row;
    g.forNeighbors(0, [&](const Neighbor &nbr) { row.push_back(nbr.node); });
    EXPECT_EQ(row, (std::vector<NodeId>{1, 2, 3}));
}

TEST(CsrGraph, DuplicatesKeepMinWeight)
{
    const CsrGraph g = CsrGraph::build(
        {{0, 1, 5.0f}, {0, 1, 2.0f}, {0, 1, 9.0f}}, 2);
    EXPECT_EQ(g.numEdges(), 1u);
    g.forNeighbors(0, [&](const Neighbor &nbr) {
        EXPECT_EQ(nbr.node, 1u);
        EXPECT_EQ(nbr.weight, 2.0f);
    });
}

TEST(CsrStore, MatchesReferenceAcrossBatches)
{
    CsrStore store;
    ReferenceStore oracle;
    ThreadPool pool(2);
    for (int b = 0; b < 5; ++b) {
        const EdgeBatch batch = test::randomBatch(200, 800, 31 + b);
        store.updateBatch(batch, pool, false);
        oracle.updateBatch(batch, pool, false);
    }
    ASSERT_EQ(store.numNodes(), oracle.numNodes());
    ASSERT_EQ(store.numEdges(), oracle.numEdges());
    for (NodeId v = 0; v < oracle.numNodes(); ++v) {
        EXPECT_EQ(test::sortedNeighbors(store, v),
                  test::sortedNeighbors(oracle, v))
            << "v=" << v;
    }
}

TEST(CsrStore, ReversedIngest)
{
    CsrStore store;
    ThreadPool pool(1);
    store.updateBatch(EdgeBatch({{1, 2, 3.0f}}), pool, /*reversed=*/true);
    EXPECT_EQ(store.degree(2), 1u);
    EXPECT_EQ(store.degree(1), 0u);
}

TEST(CsrStore, WorksAsDynGraphBackend)
{
    // The whole point of the Store concept: CSR plugs into the same
    // facade and algorithms as the dynamic structures.
    DynGraph<CsrStore> g(/*directed=*/true);
    ThreadPool pool(2);
    g.update(EdgeBatch({{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 3, 1.0f}}), pool);

    AlgContext ctx;
    std::vector<Bfs::Value> depths;
    Bfs::computeFs(g, pool, depths, ctx);
    ASSERT_EQ(depths.size(), 4u);
    EXPECT_EQ(depths[3], 3u);

    // Streaming a second batch rebuilds and stays consistent.
    g.update(EdgeBatch({{0, 3, 1.0f}}), pool);
    Bfs::computeFs(g, pool, depths, ctx);
    EXPECT_EQ(depths[3], 1u);
}

} // namespace
} // namespace saga
