/**
 * @file
 * Ingestion-pipeline equivalence tests: the PartitionedBatch scatter path
 * must produce byte-identical graph state (node/edge counts, degrees,
 * sorted neighbor sets) to the old-style per-edge reference path, for all
 * four stores × directed/undirected. Plus unit coverage for the scatter
 * itself, the ownerOf chunk→worker mapping, the BatchScratch arena, and
 * the EdgeBatch maxNode cache.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <tuple>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/dyn_graph.h"
#include "ds/hash_util.h"
#include "ds/hybrid.h"
#include "ds/reference.h"
#include "ds/stinger.h"
#include "algo/inc_engine.h"
#include "platform/rng.h"
#include "platform/thread_pool.h"
#include "saga/batch_scratch.h"
#include "saga/partitioned_batch.h"
#include "test_util.h"

namespace saga {
namespace {

/** Build a DynGraph over @p Store with a representative configuration. */
template <typename Store>
DynGraph<Store>
makeGraph(bool directed, std::size_t chunks)
{
    if constexpr (std::is_constructible_v<Store, std::size_t>) {
        return DynGraph<Store>(directed, chunks); // AC, DAH, Stinger(block)
    } else {
        (void)chunks;
        return DynGraph<Store>(directed); // AS, Reference
    }
}

/** Hub-heavy batch: most edges touch one hot source and one hot sink. */
EdgeBatch
hubBatch(NodeId num_nodes, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        NodeId src = static_cast<NodeId>(rng.below(num_nodes));
        NodeId dst = static_cast<NodeId>(rng.below(num_nodes));
        if (i % 3 == 0)
            src = 7; // hot out-hub
        if (i % 3 == 1)
            dst = 11; // hot in-hub
        const Weight weight =
            static_cast<Weight>((src * 2654435761u + dst * 40503u) % 32 + 1);
        edges.push_back({src, dst, weight});
    }
    return EdgeBatch(std::move(edges));
}

template <typename Store>
class IngestEquivalenceTest : public ::testing::Test
{
  protected:
    /**
     * Stream @p batches through the partitioned DynGraph path and the
     * ReferenceStore per-edge path, then compare full graph state.
     */
    void
    expectEquivalent(const std::vector<EdgeBatch> &batches, bool directed,
                     std::size_t chunks, std::size_t threads)
    {
        ThreadPool pool(threads);
        DynGraph<Store> graph = makeGraph<Store>(directed, chunks);
        DynGraph<ReferenceStore> oracle(directed);
        for (const EdgeBatch &batch : batches) {
            graph.update(batch, pool);
            oracle.update(batch, pool);
        }

        ASSERT_EQ(graph.numNodes(), oracle.numNodes());
        ASSERT_EQ(graph.numEdges(), oracle.numEdges());
        for (NodeId v = 0; v < oracle.numNodes(); ++v) {
            ASSERT_EQ(graph.outDegree(v), oracle.outDegree(v)) << "v=" << v;
            ASSERT_EQ(graph.inDegree(v), oracle.inDegree(v)) << "v=" << v;
            ASSERT_EQ(test::sortedOut(graph, v), test::sortedOut(oracle, v))
                << "v=" << v;
            ASSERT_EQ(test::sortedIn(graph, v), test::sortedIn(oracle, v))
                << "v=" << v;
        }
    }

    std::vector<EdgeBatch>
    randomStream(int batches, NodeId num_nodes, std::size_t per_batch,
                 std::uint64_t seed)
    {
        std::vector<EdgeBatch> stream;
        for (int b = 0; b < batches; ++b)
            stream.push_back(
                test::randomBatch(num_nodes, per_batch, seed + b));
        return stream;
    }
};

using IngestStores = ::testing::Types<AdjSharedStore, AdjChunkedStore,
                                      StingerStore, DahStore, HybridStore>;
TYPED_TEST_SUITE(IngestEquivalenceTest, IngestStores);

TYPED_TEST(IngestEquivalenceTest, RandomStreamDirected)
{
    this->expectEquivalent(this->randomStream(6, 700, 2500, 17),
                           /*directed=*/true, /*chunks=*/4, /*threads=*/4);
}

TYPED_TEST(IngestEquivalenceTest, RandomStreamUndirected)
{
    this->expectEquivalent(this->randomStream(6, 700, 2500, 23),
                           /*directed=*/false, /*chunks=*/4, /*threads=*/4);
}

TYPED_TEST(IngestEquivalenceTest, HubHeavyStream)
{
    std::vector<EdgeBatch> stream;
    for (int b = 0; b < 4; ++b)
        stream.push_back(hubBatch(400, 3000, 31 + b));
    this->expectEquivalent(stream, /*directed=*/true, /*chunks=*/4,
                           /*threads=*/4);
    this->expectEquivalent(stream, /*directed=*/false, /*chunks=*/4,
                           /*threads=*/4);
}

TYPED_TEST(IngestEquivalenceTest, MoreChunksThanWorkers)
{
    this->expectEquivalent(this->randomStream(3, 500, 2000, 41),
                           /*directed=*/true, /*chunks=*/7, /*threads=*/3);
}

TYPED_TEST(IngestEquivalenceTest, FewerChunksThanWorkers)
{
    this->expectEquivalent(this->randomStream(3, 500, 2000, 47),
                           /*directed=*/true, /*chunks=*/3, /*threads=*/6);
}

TYPED_TEST(IngestEquivalenceTest, SingleWorker)
{
    this->expectEquivalent(this->randomStream(3, 300, 1200, 53),
                           /*directed=*/true, /*chunks=*/4, /*threads=*/1);
}

TYPED_TEST(IngestEquivalenceTest, EmptyAndTinyBatches)
{
    std::vector<EdgeBatch> stream;
    stream.push_back(EdgeBatch());
    stream.push_back(EdgeBatch({{0, 1, 1.0f}}));
    stream.push_back(EdgeBatch());
    stream.push_back(EdgeBatch({{1, 0, 2.0f}, {0, 1, 3.0f}}));
    this->expectEquivalent(stream, /*directed=*/true, /*chunks=*/4,
                           /*threads=*/4);
}

/** The partitioned store overload must match the legacy full-scan one. */
TYPED_TEST(IngestEquivalenceTest, StoreOverloadsAgree)
{
    if constexpr (std::is_same_v<TypeParam, AdjChunkedStore> ||
                  std::is_same_v<TypeParam, DahStore> ||
                  std::is_same_v<TypeParam, HybridStore>) {
        ThreadPool pool(4);
        TypeParam legacy(5), partitioned(5);
        PartitionedBatch parts;
        for (int b = 0; b < 4; ++b) {
            const EdgeBatch batch = test::randomBatch(300, 1500, 61 + b);
            const bool reversed = b % 2 == 1;
            legacy.updateBatch(batch, pool, reversed);
            parts.build(batch, pool, legacy.numChunks());
            partitioned.updateBatch(parts, pool, reversed);
        }
        ASSERT_EQ(legacy.numNodes(), partitioned.numNodes());
        ASSERT_EQ(legacy.numEdges(), partitioned.numEdges());
        for (NodeId v = 0; v < legacy.numNodes(); ++v) {
            ASSERT_EQ(test::sortedNeighbors(legacy, v),
                      test::sortedNeighbors(partitioned, v))
                << "v=" << v;
        }
    }
}

// ---------------------------------------------------------------------------
// PartitionedBatch unit tests.

std::multiset<std::tuple<NodeId, NodeId, Weight>>
edgeMultiset(const EdgeBatch &batch)
{
    std::multiset<std::tuple<NodeId, NodeId, Weight>> set;
    for (const Edge &e : batch.edges())
        set.insert({e.src, e.dst, e.weight});
    return set;
}

TEST(PartitionedBatch, BucketsPartitionBothOrientations)
{
    ThreadPool pool(4);
    const EdgeBatch batch = test::randomBatch(200, 5000, 71);
    PartitionedBatch parts;
    const std::size_t chunks = 5;
    parts.build(batch, pool, chunks);

    EXPECT_EQ(parts.numChunks(), chunks);
    EXPECT_EQ(parts.size(), batch.size());
    EXPECT_EQ(parts.maxNode(), batch.maxNode());

    std::multiset<std::tuple<NodeId, NodeId, Weight>> fwd, rev;
    std::size_t fwd_total = 0, rev_total = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        for (const Edge &e : parts.bucket(c, false)) {
            EXPECT_EQ(chunkOfNode(e.src, chunks), c);
            fwd.insert({e.src, e.dst, e.weight});
            ++fwd_total;
        }
        for (const Edge &e : parts.bucket(c, true)) {
            EXPECT_EQ(chunkOfNode(e.src, chunks), c);
            rev.insert({e.dst, e.src, e.weight}); // un-swap for comparison
            ++rev_total;
        }
    }
    EXPECT_EQ(fwd_total, batch.size());
    EXPECT_EQ(rev_total, batch.size());
    const auto expected = edgeMultiset(batch);
    EXPECT_EQ(fwd, expected);
    EXPECT_EQ(rev, expected);
}

TEST(PartitionedBatch, ReusedAcrossBatchesIncludingShrink)
{
    ThreadPool pool(3);
    PartitionedBatch parts;
    parts.build(test::randomBatch(500, 4000, 73), pool, 4);
    EXPECT_EQ(parts.size(), 4000u);

    const EdgeBatch small = test::randomBatch(50, 60, 79);
    parts.build(small, pool, 4);
    EXPECT_EQ(parts.size(), 60u);
    EXPECT_EQ(parts.maxNode(), small.maxNode());
    std::size_t total = 0;
    for (std::size_t c = 0; c < 4; ++c)
        total += parts.bucket(c, false).size();
    EXPECT_EQ(total, 60u);
}

TEST(PartitionedBatch, EmptyBatch)
{
    ThreadPool pool(2);
    PartitionedBatch parts;
    parts.build(EdgeBatch(), pool, 3);
    EXPECT_TRUE(parts.empty());
    EXPECT_EQ(parts.maxNode(), kInvalidNode);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_TRUE(parts.bucket(c, false).empty());
        EXPECT_TRUE(parts.bucket(c, true).empty());
    }
}

TEST(PartitionedBatch, SingleChunkHoldsEverything)
{
    ThreadPool pool(4);
    const EdgeBatch batch = test::randomBatch(100, 1000, 83);
    PartitionedBatch parts;
    parts.build(batch, pool, 1);
    EXPECT_EQ(parts.bucket(0, false).size(), batch.size());
    EXPECT_EQ(parts.bucket(0, true).size(), batch.size());
}

// ---------------------------------------------------------------------------
// ownerOf mapping properties.

TEST(OwnerOf, EveryChunkHasExactlyOneInRangeOwner)
{
    for (std::size_t chunks : {1u, 2u, 3u, 5u, 8u, 13u, 64u}) {
        for (std::size_t workers : {1u, 2u, 3u, 4u, 7u, 16u}) {
            for (std::size_t c = 0; c < chunks; ++c)
                EXPECT_LT(ownerOf(c, chunks, workers), workers)
                    << "chunks=" << chunks << " workers=" << workers;
        }
    }
}

TEST(OwnerOf, BalancedWhenChunksAtLeastWorkers)
{
    for (std::size_t chunks : {4u, 5u, 8u, 13u, 64u}) {
        for (std::size_t workers : {2u, 3u, 4u}) {
            if (chunks < workers)
                continue;
            std::vector<std::size_t> owned(workers, 0);
            for (std::size_t c = 0; c < chunks; ++c)
                ++owned[ownerOf(c, chunks, workers)];
            const auto [lo, hi] =
                std::minmax_element(owned.begin(), owned.end());
            EXPECT_GE(*lo, 1u) << "chunks=" << chunks
                               << " workers=" << workers;
            EXPECT_LE(*hi - *lo, 1u)
                << "chunks=" << chunks << " workers=" << workers;
        }
    }
}

TEST(OwnerOf, DistinctOwnersWhenFewerChunksThanWorkers)
{
    // chunks < workers: idle workers are unavoidable (ownership is
    // exclusive), but no two chunks may share a worker.
    std::set<std::size_t> owners;
    for (std::size_t c = 0; c < 3; ++c)
        owners.insert(ownerOf(c, 3, 8));
    EXPECT_EQ(owners.size(), 3u);
}

// ---------------------------------------------------------------------------
// BatchScratch + parallel affectedVertices.

std::set<NodeId>
asSet(const std::vector<NodeId> &v)
{
    return std::set<NodeId>(v.begin(), v.end());
}

TEST(BatchScratch, ParallelAffectedMatchesSerial)
{
    ThreadPool pool(4);
    BatchScratch scratch;
    for (int b = 0; b < 10; ++b) {
        const EdgeBatch batch = test::randomBatch(400, 3000, 89 + b);
        const auto serial = affectedVertices(batch, 400);
        const auto parallel = affectedVertices(batch, 400, scratch, pool);
        EXPECT_EQ(asSet(parallel), asSet(serial)) << "batch " << b;
        EXPECT_EQ(parallel.size(), serial.size()) << "batch " << b;
    }
}

TEST(BatchScratch, OutOfRangeVerticesIgnored)
{
    ThreadPool pool(2);
    BatchScratch scratch;
    const EdgeBatch batch({{1, 9, 1.0f}, {2, 3, 1.0f}});
    const auto affected = affectedVertices(batch, 5, scratch, pool);
    EXPECT_EQ(asSet(affected), (std::set<NodeId>{1, 2, 3}));
}

TEST(BatchScratch, EpochWrapKeepsMarksFresh)
{
    // The uint8 epoch wraps every 255 batches; stale stamps must never
    // leak into a fresh batch.
    ThreadPool pool(2);
    BatchScratch scratch;
    const EdgeBatch batch({{0, 1, 1.0f}, {1, 2, 1.0f}});
    for (int b = 0; b < 600; ++b) {
        const auto affected = affectedVertices(batch, 3, scratch, pool);
        ASSERT_EQ(asSet(affected), (std::set<NodeId>{0, 1, 2}))
            << "batch " << b;
    }
}

TEST(BatchScratch, GrowsWithGraph)
{
    ThreadPool pool(2);
    BatchScratch scratch;
    affectedVertices(EdgeBatch({{0, 1, 1.0f}}), 2, scratch, pool);
    EXPECT_EQ(scratch.numNodes(), 2u);
    const auto affected = affectedVertices(
        EdgeBatch({{999, 5, 1.0f}}), 1000, scratch, pool);
    EXPECT_EQ(scratch.numNodes(), 1000u);
    EXPECT_EQ(asSet(affected), (std::set<NodeId>{5, 999}));
}

// ---------------------------------------------------------------------------
// EdgeBatch maxNode cache.

TEST(EdgeBatchMaxNode, MaintainedByPushBack)
{
    EdgeBatch batch;
    EXPECT_EQ(batch.maxNode(), kInvalidNode);
    batch.push_back({3, 1, 1.0f});
    EXPECT_EQ(batch.maxNode(), 3u);
    batch.push_back({2, 9, 1.0f});
    EXPECT_EQ(batch.maxNode(), 9u);
    batch.push_back({4, 5, 1.0f}); // below the current max
    EXPECT_EQ(batch.maxNode(), 9u);
    batch.push_back({kInvalidNode, 40, 1.0f}); // rejected sentinel edge
    EXPECT_EQ(batch.maxNode(), 9u);
    batch.push_back({40, 0, 1.0f});
    EXPECT_EQ(batch.maxNode(), 40u);
}

TEST(EdgeBatchMaxNode, ConstructorSeedsCacheAfterSentinelFiltering)
{
    const EdgeBatch batch(
        {{1, 2, 1.0f}, {kInvalidNode, 99, 1.0f}, {5, 3, 1.0f}});
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.maxNode(), 5u);
}

} // namespace
} // namespace saga
