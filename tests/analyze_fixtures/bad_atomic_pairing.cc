// Seeded violations for the acquire/release pairing pack. Each member
// below breaks the protocol a different way; none of the weaker
// accesses carries the repo's `relaxed:` justification comment.
#include <atomic>
#include <cstdint>

namespace fixture {

struct Handshake
{
    void
    publisher()
    {
        payload_ = 41;
        // seeded: atomics/orphaned-release — nothing ever acquire-reads
        // ready_, so this fence publishes to nobody.
        ready_.store(1, std::memory_order_release);
        gate_.fetch_add(1); // seq_cst side of the mixed protocol
    }

    int
    consumer()
    {
        // seeded: atomics/orphaned-acquire — nothing ever release-writes
        // done_, so there is nothing to synchronize with.
        if (done_.load(std::memory_order_acquire) != 0)
            return payload_;
        // seeded: atomics/seq-cst-downgrade — gate_ is seq_cst in
        // publisher() but silently relaxed here.
        gate_.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }

    int payload_ = 0;
    std::atomic<std::uint32_t> ready_{0};
    std::atomic<std::uint32_t> done_{0};
    std::atomic<std::uint32_t> gate_{0};
};

} // namespace fixture
