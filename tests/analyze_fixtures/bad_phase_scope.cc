// Seeded violations for the telemetry scope-discipline pack, with
// minimal telemetry look-alikes so the fixture parses standalone.
#include <cstdint>

namespace telemetry {

enum class Phase { ComputeRound };
enum class Counter { ComputeRounds };

struct PhaseScope
{
    explicit PhaseScope(Phase p);
    ~PhaseScope();
};

void count(Counter c, std::uint64_t n);

} // namespace telemetry

#define SAGA_COUNT(counter, amount) \
    ::telemetry::count((counter), (amount))

namespace fixture {

inline void
timedRegion()
{
    // seeded: telemetry/phase-scope-temporary — the temporary dies at
    // the end of the full-expression and times nothing.
    telemetry::PhaseScope(telemetry::Phase::ComputeRound);
    // seeded: telemetry/unqualified-counter-id — bare enum id.
    SAGA_COUNT(ComputeRounds, 1);
}

} // namespace fixture
