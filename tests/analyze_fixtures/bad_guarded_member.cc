// Seeded violations for the guarded-member coverage pack. The class
// opts into the audit with the marker (outside the fixture tree the
// audit set is the stores + DynGraph + ThreadPool + AsyncLane).
#include <atomic>
#include <cstdint>
#include <vector>

namespace fixture {

// saga-analyze: audit-class
struct LeakyStore
{
    void
    bump()
    {
        ++hits_;
    }

    // seeded: guarded/unannotated-member — no category at all.
    std::uint64_t hits_ = 0;
    // seeded: guarded/bogus-chunk-owned — the claim needs the owner to
    // embed ChunkOwnership and expose a SAGA_REQUIRES method; LeakyStore
    // has neither.
    // chunk-owned: per-chunk rows
    std::vector<int> rows_;
    // Negative controls: these categories pass the audit as-is.
    std::atomic<std::uint32_t> epoch_{0};
    // immutable-after-build: set once in the constructor
    std::uint32_t capacity_ = 0;
    static constexpr int kShift = 6;
};

} // namespace fixture
