// Seeded violations for the hot-path purity pack. kernelRound() is a
// marked kernel entry; every impurity below must be reported, whether
// it sits in the entry itself or behind a call edge (helper()).
#include <cstdio>
#include <mutex>
#include <vector>

namespace fixture {

struct HotKernel
{
    // saga-analyze: hotpath-entry
    void
    kernelRound()
    {
        helper();          // impurities behind a call edge still count
        buf_.push_back(1); // seeded: hotpath/container-growth
        int *p = new int(7); // seeded: hotpath/heap-allocation
        std::printf("round %d\n", *p); // seeded: hotpath/io
        // hotpath-allow:
        buf_.reserve(64); // seeded: hotpath/unjustified-escape (no reason)
    }

    void
    helper()
    {
        std::lock_guard<std::mutex> guard(mu_); // seeded: hotpath/lock-acquisition
        if (buf_.empty())
            throw 42; // seeded: hotpath/throw
    }

    std::vector<int> buf_;
    std::mutex mu_;
};

} // namespace fixture
