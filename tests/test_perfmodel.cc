/** @file Architecture-model tests: cache sim, scaling sim, bandwidth. */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "perfmodel/bandwidth_model.h"
#include "perfmodel/cache_sim.h"
#include "perfmodel/scaling_sim.h"
#include "perfmodel/trace.h"
#include "perfmodel/workload_model.h"

namespace saga {
namespace perf {
namespace {

TEST(Trace, DisabledByDefault)
{
    EXPECT_EQ(tls_sink, nullptr);
    touch(nullptr, 4); // must be harmless with no sink
    ops(10);
}

TEST(Trace, ScopedSinkInstallsAndRestores)
{
    CountingSink sink;
    {
        ScopedSink scope(&sink);
        int x = 0;
        touch(&x, sizeof(x));
        touchWrite(&x, sizeof(x));
        ops(5);
    }
    EXPECT_EQ(tls_sink, nullptr);
    EXPECT_EQ(sink.reads, 1u);
    EXPECT_EQ(sink.writes, 1u);
    EXPECT_EQ(sink.bytesTotal, 8u);
    EXPECT_EQ(sink.opsTotal, 5u);
}

TEST(CacheSim, HitsAfterFirstTouch)
{
    CacheSim sim(CacheHierarchyConfig::tiny());
    alignas(64) char buffer[64];
    sim.access(buffer, 4, false); // cold miss everywhere
    EXPECT_EQ(sim.levelStats(0).misses, 1u);
    EXPECT_EQ(sim.levelStats(1).misses, 1u);
    EXPECT_EQ(sim.dramBytes(), 64u);

    sim.access(buffer, 4, false); // L1 hit
    EXPECT_EQ(sim.levelStats(0).hits, 1u);
    EXPECT_EQ(sim.levelStats(1).misses, 1u);
    EXPECT_EQ(sim.dramBytes(), 64u);
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines)
{
    CacheSim sim(CacheHierarchyConfig::tiny());
    alignas(64) char buffer[128];
    sim.access(buffer + 60, 8, false); // crosses a 64B boundary
    EXPECT_EQ(sim.memoryAccesses(), 2u);
    EXPECT_EQ(sim.levelStats(0).misses, 2u);
}

TEST(CacheSim, LruEviction)
{
    // tiny(): L1 = 1KB, 2-way, 64B lines -> 8 sets. Three lines mapping
    // to the same set evict the least recently used.
    CacheSim sim(CacheHierarchyConfig::tiny());
    const auto line = [](std::uintptr_t i) {
        return reinterpret_cast<const void *>(i * 8 * 64); // same set 0
    };
    sim.access(line(1), 1, false);
    sim.access(line(2), 1, false);
    sim.access(line(1), 1, false); // refresh line 1
    sim.access(line(3), 1, false); // evicts line 2
    sim.access(line(1), 1, false); // still resident
    EXPECT_EQ(sim.levelStats(0).hits, 2u);
    sim.access(line(2), 1, false); // was evicted -> L1 miss
    EXPECT_EQ(sim.levelStats(0).misses, 4u);
}

TEST(CacheSim, L2CapturesL1Evictions)
{
    CacheSim sim(CacheHierarchyConfig::tiny());
    // Working set of 2KB: thrashes 1KB L1 but fits 4KB L2.
    std::vector<char> buffer(2048);
    for (int pass = 0; pass < 4; ++pass) {
        for (std::size_t off = 0; off < buffer.size(); off += 64)
            sim.access(buffer.data() + off, 1, false);
    }
    EXPECT_GT(sim.levelStats(1).hitRatio(), 0.5);
    EXPECT_LT(sim.levelStats(0).hitRatio(), 0.5);
}

TEST(CacheSim, DirtyWritebackCounted)
{
    CacheSim sim(CacheHierarchyConfig::tiny());
    // Write a 16KB region (larger than 4KB L2) twice: dirty lines must be
    // written back when evicted from the last level.
    std::vector<char> buffer(16384);
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t off = 0; off < buffer.size(); off += 64)
            sim.access(buffer.data() + off, 1, true);
    }
    // 2 passes x 256 lines fetched + writebacks of evicted dirty lines.
    EXPECT_GT(sim.dramBytes(), 2u * 256 * 64);
}

TEST(CacheSim, MpkiUsesInstructionCount)
{
    CacheSim sim(CacheHierarchyConfig::tiny());
    alignas(64) char buffer[64];
    sim.access(buffer, 1, false); // 1 miss
    sim.op(999);                  // 999 ops + 1 access = 1000 instructions
    EXPECT_DOUBLE_EQ(sim.mpki(0), 1.0);
}

TEST(CacheSim, ResetStatsKeepsContents)
{
    CacheSim sim(CacheHierarchyConfig::tiny());
    alignas(64) char buffer[64];
    sim.access(buffer, 1, false);
    sim.resetStats();
    EXPECT_EQ(sim.levelStats(0).accesses(), 0u);
    sim.access(buffer, 1, false); // contents survived -> hit
    EXPECT_EQ(sim.levelStats(0).hits, 1u);

    sim.flush();
    sim.access(buffer, 1, false); // contents dropped -> miss
    EXPECT_EQ(sim.levelStats(0).misses, 1u);
}

TEST(CacheSim, XeonGeometry)
{
    const auto config = CacheHierarchyConfig::xeonGold6142();
    ASSERT_EQ(config.levels.size(), 3u);
    EXPECT_EQ(config.levels[0].sizeBytes, 32u * 1024);
    EXPECT_EQ(config.levels[1].sizeBytes, 1024u * 1024);
    EXPECT_EQ(config.levels[2].sizeBytes, 22ull * 1024 * 1024);
}

TEST(ScalingSim, PerfectlyParallelWork)
{
    std::vector<SimTask> tasks(64, SimTask{10, 0, -1, -1});
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 1).makespan, 640);
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 8).makespan, 80);
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 64).makespan, 10);
}

TEST(ScalingSim, FullySerializedByOneLock)
{
    std::vector<SimTask> tasks(16, SimTask{0, 10, /*lock=*/1, -1});
    // All serial parts share one lock: no speedup at any core count.
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 1).makespan, 160);
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 16).makespan, 160);
}

TEST(ScalingSim, ParallelSearchSerialInsert)
{
    // Stinger-like: big parallel part, small serialized part.
    std::vector<SimTask> tasks(16, SimTask{90, 10, /*lock=*/1, -1});
    const double t1 = scheduleTasks(tasks, 1).makespan;
    const double t16 = scheduleTasks(tasks, 16).makespan;
    EXPECT_DOUBLE_EQ(t1, 1600);
    EXPECT_LT(t16, 400); // scales much better than the lock-bound case
    EXPECT_GE(t16, 160); // but not below the serial floor
}

TEST(ScalingSim, AffinityImbalance)
{
    // Chunked DAH with one hot chunk: extra cores do not help the
    // dominant chunk.
    std::vector<SimTask> tasks;
    for (int i = 0; i < 100; ++i)
        tasks.push_back({10, 0, -1, /*affinity=*/0});
    for (int i = 0; i < 10; ++i)
        tasks.push_back({10, 0, -1, /*affinity=*/1});
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 2).makespan, 1000);
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 16).makespan, 1000);
}

TEST(ScalingSim, WaitPenaltyLengthensContendedChains)
{
    // 8 tasks on one lock, run on 8 cores: with a penalty, all but the
    // first arrival pay it inside the critical section.
    std::vector<SimTask> tasks(8, SimTask{0, 10, /*lock=*/5, -1});
    const double without = scheduleTasks(tasks, 8, 0.0).makespan;
    const double with = scheduleTasks(tasks, 8, 25.0).makespan;
    EXPECT_DOUBLE_EQ(without, 80);
    EXPECT_DOUBLE_EQ(with, 80 + 7 * 25);
}

TEST(ScalingSim, WaitPenaltyNoEffectWithoutContention)
{
    // Distinct locks: nobody waits, penalty never charged.
    std::vector<SimTask> tasks;
    for (int i = 0; i < 8; ++i)
        tasks.push_back({0, 10, /*lock=*/100 + i, -1});
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 8, 1000.0).makespan, 10);
}

TEST(ScalingSim, WaitPenaltySingleCoreNeverWaits)
{
    // On one core tasks never overlap, so no penalty applies.
    std::vector<SimTask> tasks(8, SimTask{0, 10, /*lock=*/5, -1});
    EXPECT_DOUBLE_EQ(scheduleTasks(tasks, 1, 1000.0).makespan, 80);
}

TEST(ScalingSim, UtilizationBounds)
{
    std::vector<SimTask> tasks(10, SimTask{10, 0, -1, -1});
    const ScheduleResult r = scheduleTasks(tasks, 4);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
    EXPECT_DOUBLE_EQ(r.busyTime, 100.0);
}

TEST(ScalingSim, IterationsSumWithBarriers)
{
    std::vector<std::vector<SimTask>> iters(3,
        std::vector<SimTask>(4, SimTask{10, 0, -1, -1}));
    EXPECT_DOUBLE_EQ(scheduleIterations(iters, 4, 5), 3 * (10 + 5));
}

TEST(BandwidthModel, CpuBoundPhase)
{
    MachineModel machine;
    // Tiny traffic, lots of compute -> cpu bound, low bandwidth.
    const PhaseUtilization u = modelPhase(machine, 1e9, 1 << 20);
    EXPECT_FALSE(u.memoryBound);
    EXPECT_LT(u.memGBs, machine.memBandwidthPerSocketGBs);
    EXPECT_GT(u.seconds, 0);
}

TEST(BandwidthModel, MemoryBoundPhaseSaturates)
{
    MachineModel machine;
    // Almost no compute, huge traffic -> pinned at the tightest roof.
    // With remoteFraction 0.5, the QPI link (68.1 GB/s for 50% of the
    // traffic) binds before the 256 GB/s DRAM roof.
    const PhaseUtilization u = modelPhase(machine, 1.0, 100ull << 30);
    EXPECT_TRUE(u.memoryBound);
    EXPECT_NEAR(u.qpiPercent, 100.0, 0.1);
    EXPECT_NEAR(u.memGBs,
                machine.qpiBandwidthGBs / machine.remoteFraction, 1.0);
    EXPECT_LE(u.memGBs,
              machine.memBandwidthPerSocketGBs * machine.sockets);
}

TEST(BandwidthModel, QpiScalesWithRemoteFraction)
{
    MachineModel machine;
    machine.remoteFraction = 0.5;
    const PhaseUtilization half = modelPhase(machine, 1e8, 1ull << 30);
    machine.remoteFraction = 0.25;
    const PhaseUtilization quarter = modelPhase(machine, 1e8, 1ull << 30);
    EXPECT_NEAR(half.qpiPercent, 2 * quarter.qpiPercent, 1e-9);
}

TEST(WorkloadModel, AsTasksSerializeOnHotVertex)
{
    UpdatePhaseModel model(DsKind::AS, 1, /*directed=*/true);
    std::vector<Edge> edges;
    for (NodeId d = 0; d < 200; ++d)
        edges.push_back({0, d + 1, 1.0f}); // all inserts lock vertex 0
    const auto tasks = model.batchTasks(EdgeBatch(std::move(edges)));
    ASSERT_EQ(tasks.size(), 400u); // out-store + in-store
    // Out-store tasks all carry the same lock; scaling must flatline.
    const double t1 = scheduleTasks(tasks, 1).makespan;
    const double t16 = scheduleTasks(tasks, 16).makespan;
    EXPECT_GT(t1 / t16, 1.0);
    EXPECT_LT(t1 / t16, 3.0); // far from 16x
}

TEST(WorkloadModel, DahTasksPinToChunks)
{
    UpdatePhaseModel model(DsKind::DAH, 4, /*directed=*/true);
    std::vector<Edge> edges{{0, 1, 1.0f}, {1, 2, 1.0f}, {5, 6, 1.0f}};
    const auto tasks = model.batchTasks(EdgeBatch(std::move(edges)));
    for (const SimTask &task : tasks) {
        EXPECT_GE(task.affinity, 0);
        EXPECT_LT(task.affinity, 4);
        EXPECT_EQ(task.lockId, -1);
    }
}

TEST(WorkloadModel, DegreesAccumulateAcrossBatches)
{
    UpdatePhaseModel model(DsKind::AS, 1, /*directed=*/true);
    model.batchTasks(EdgeBatch({{0, 1, 1.0f}, {0, 2, 1.0f}}));
    model.batchTasks(EdgeBatch({{0, 3, 1.0f}}));
    EXPECT_EQ(model.outDegrees()[0], 3u);
    EXPECT_EQ(model.inDegrees()[1], 1u);
}

TEST(WorkloadModel, ComputeTasksAreLockFree)
{
    const auto tasks =
        computeIterationTasks({0, 5, 10}, CostParams{});
    ASSERT_EQ(tasks.size(), 3u);
    EXPECT_LT(tasks[0].parCost, tasks[2].parCost);
    for (const SimTask &task : tasks) {
        EXPECT_EQ(task.lockId, -1);
        EXPECT_EQ(task.affinity, -1);
    }
}

} // namespace
} // namespace perf
} // namespace saga
