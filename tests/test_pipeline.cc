/**
 * @file
 * Pipelined (snapshot-isolated) driver tests: the serial strict
 * alternation is the oracle — the overlap loop must match it bit for bit
 * on every store, model, and directedness, because the store is frozen
 * during the overlap and the staged publish replays exactly the serial
 * apply order. The stress tests hammer the epoch handoff for TSan.
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "platform/thread_pool.h"
#include "saga/experiment.h"
#include "saga/stream_source.h"
#include "test_util.h"

namespace saga {
namespace {

/**
 * Paired configs whose compute pools are identical: the serial run's
 * pool (threads == R) matches the pipelined run's reader pool
 * (threads == R + W, writerThreads == W), and the serial ingest pool
 * (R threads) matches the writer pool (W == R), so scatter layout,
 * chunk ownership, and compute scheduling are the same in both modes —
 * the precondition for exact value equality.
 */
struct ConfigPair
{
    RunConfig serial;
    RunConfig pipelined;
};

ConfigPair
pairedConfigs(DsKind ds, AlgKind alg, ModelKind model)
{
    RunConfig serial;
    serial.ds = ds;
    serial.alg = alg;
    serial.model = model;
    serial.threads = 2;
    serial.chunks = 4;

    RunConfig pipelined = serial;
    pipelined.pipeline = true;
    pipelined.threads = 4;
    pipelined.writerThreads = 2;
    return {serial, pipelined};
}

DatasetProfile
smallProfile(bool directed)
{
    // talk = directed heavy tail, orkut = the undirected dataset; shrink
    // and re-batch so each run streams ~5 batches with a remainder batch.
    DatasetProfile profile =
        findProfile(directed ? "talk" : "orkut")->scaled(0.02);
    profile.batchSize = static_cast<std::size_t>(profile.numEdges / 5 + 3);
    return profile;
}

TEST(AsyncLane, RunsJobsInSubmissionOrder)
{
    AsyncLane lane;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
        lane.submit([&order, i] { order.push_back(i); });
    }
    lane.wait();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(AsyncLane, WaitIsIdempotentAndReusable)
{
    AsyncLane lane;
    std::atomic<int> runs{0};
    lane.wait(); // no job yet: must not block or crash
    lane.submit([&runs] { runs.fetch_add(1); });
    lane.wait();
    lane.wait();
    EXPECT_EQ(runs.load(), 1);
    lane.submit([&runs] { runs.fetch_add(1); });
    lane.wait();
    EXPECT_EQ(runs.load(), 2);
}

TEST(Pipeline, MatchesSerialOracleAcrossStoresModelsDirectedness)
{
    for (DsKind ds :
         {DsKind::AS, DsKind::AC, DsKind::Stinger, DsKind::DAH,
          DsKind::Hybrid}) {
        for (ModelKind model : {ModelKind::FS, ModelKind::INC}) {
            for (bool directed : {true, false}) {
                SCOPED_TRACE(std::string(toString(ds)) + "/" +
                             toString(model) +
                             (directed ? "/directed" : "/undirected"));
                // PR: floating-point accumulation makes value equality a
                // genuine bit-level apply-order check, not just set
                // equality.
                const ConfigPair cfg =
                    pairedConfigs(ds, AlgKind::PR, model);
                const DatasetProfile profile = smallProfile(directed);

                const StreamRun serial =
                    runStream(profile, cfg.serial, 7);
                const StreamRun piped =
                    runStream(profile, cfg.pipelined, 7);

                EXPECT_FALSE(serial.pipelined);
                EXPECT_TRUE(piped.pipelined);
                ASSERT_EQ(serial.batches.size(), profile.batchCount());
                ASSERT_EQ(piped.batches.size(), profile.batchCount());
                for (std::size_t b = 0; b < serial.batches.size(); ++b) {
                    EXPECT_EQ(piped.batches[b].batchEdges,
                              serial.batches[b].batchEdges);
                    EXPECT_EQ(piped.batches[b].graphEdges,
                              serial.batches[b].graphEdges)
                        << "batch " << b;
                    EXPECT_EQ(piped.batches[b].graphNodes,
                              serial.batches[b].graphNodes)
                        << "batch " << b;
                }
            }
        }
    }
}

TEST(Pipeline, FinalValuesBitEqualToSerial)
{
    for (DsKind ds :
         {DsKind::AS, DsKind::AC, DsKind::Stinger, DsKind::DAH,
          DsKind::Hybrid}) {
        for (ModelKind model : {ModelKind::FS, ModelKind::INC}) {
            for (bool directed : {true, false}) {
                SCOPED_TRACE(std::string(toString(ds)) + "/" +
                             toString(model) +
                             (directed ? "/directed" : "/undirected"));
                // FS PR: floating-point sums expose any apply-order
                // difference. INC PR is benignly racy by design (the
                // engine doc: value reads race with triggered stores),
                // so the incremental model uses CC — deterministic
                // min-propagation — as its bit-equality probe.
                const AlgKind alg =
                    model == ModelKind::FS ? AlgKind::PR : AlgKind::CC;
                ConfigPair cfg = pairedConfigs(ds, alg, model);
                cfg.serial.directed = directed;
                cfg.pipelined.directed = directed;

                auto serial = makeRunner(cfg.serial);
                auto piped = makeRunner(cfg.pipelined);
                const DatasetProfile profile = smallProfile(directed);
                StreamSource s1(profile.generate(3), profile.batchSize, 3);
                StreamSource s2(profile.generate(3), profile.batchSize, 3);
                driveStream(*serial, s1);
                driveStream(*piped, s2);

                EXPECT_EQ(piped->numNodes(), serial->numNodes());
                EXPECT_EQ(piped->numEdges(), serial->numEdges());
                EXPECT_EQ(piped->values(), serial->values());
            }
        }
    }
}

TEST(Pipeline, RandomizedEquivalenceOverSeeds)
{
    // Randomized batches (including cross-orientation duplicates in
    // undirected mode and in-batch duplicates everywhere) across several
    // seeds; CC so INC propagation distances vary with batch shape.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        ConfigPair cfg = pairedConfigs(DsKind::AS, AlgKind::CC,
                                       ModelKind::INC);
        cfg.serial.directed = false;
        cfg.pipelined.directed = false;
        auto serial = makeRunner(cfg.serial);
        auto piped = makeRunner(cfg.pipelined);

        std::vector<Edge> edges;
        for (int b = 0; b < 6; ++b) {
            const EdgeBatch batch =
                test::randomBatch(120, 400, seed * 100 + b);
            for (std::size_t i = 0; i < batch.size(); ++i)
                edges.push_back(batch[i]);
        }
        StreamSource s1(edges, 400, StreamSource::kNoShuffle);
        StreamSource s2(edges, 400, StreamSource::kNoShuffle);
        const StreamRun r1 = driveStream(*serial, s1);
        const StreamRun r2 = driveStream(*piped, s2);

        ASSERT_EQ(r1.batches.size(), s1.batchCount());
        ASSERT_EQ(r2.batches.size(), s2.batchCount());
        EXPECT_EQ(piped->numEdges(), serial->numEdges());
        EXPECT_EQ(piped->values(), serial->values());
    }
}

TEST(Pipeline, BatchResultBreakdownIsConsistent)
{
    const ConfigPair cfg =
        pairedConfigs(DsKind::AC, AlgKind::PR, ModelKind::FS);
    const DatasetProfile profile = smallProfile(true);
    const StreamRun run = runStream(profile, cfg.pipelined, 2);
    ASSERT_EQ(run.batches.size(), profile.batchCount());
    EXPECT_GT(run.wallSeconds, 0.0);
    for (const BatchResult &b : run.batches) {
        EXPECT_GE(b.stageSeconds, 0.0);
        EXPECT_GE(b.publishSeconds, 0.0);
        EXPECT_GE(b.stallSeconds, 0.0);
        // Eq. 1 comparability contract: update = stage + publish.
        EXPECT_DOUBLE_EQ(b.updateSeconds,
                         b.stageSeconds + b.publishSeconds);
        EXPECT_DOUBLE_EQ(b.totalSeconds(),
                         b.updateSeconds + b.computeSeconds);
    }
}

TEST(Pipeline, SerialRunnerIgnoresPipelineHooks)
{
    RunConfig cfg;
    cfg.ds = DsKind::AS;
    cfg.alg = AlgKind::CC;
    cfg.threads = 2;
    auto runner = makeRunner(cfg);
    EXPECT_FALSE(runner->pipelined());
    const EdgeBatch batch = test::randomBatch(50, 100, 1);
    runner->stageAsync(batch); // no-ops on the serial driver
    const PipelineWaitResult wait = runner->waitStage();
    EXPECT_EQ(wait.stageSeconds, 0.0);
    EXPECT_EQ(wait.stallSeconds, 0.0);
    EXPECT_EQ(runner->publishPhase(), 0.0);
    EXPECT_EQ(runner->numEdges(), 0u); // nothing was ingested
}

/**
 * Epoch handoff stress for TSan: many tiny batches so the driver spends
 * its time in stage/compute overlap and publish barriers rather than in
 * the phases themselves. Any store mutation leaking out of the publish
 * window, or any unsynchronized stage/compute access, is a data race
 * TSan will see.
 */
TEST(Pipeline, HandoffStressManySmallBatches)
{
    for (DsKind ds : {DsKind::AS, DsKind::Stinger}) {
        SCOPED_TRACE(toString(ds));
        RunConfig cfg;
        cfg.ds = ds;
        cfg.alg = AlgKind::CC;
        cfg.model = ModelKind::INC;
        cfg.threads = 4;
        cfg.writerThreads = 2;
        cfg.chunks = 4;
        cfg.pipeline = true;
        auto runner = makeRunner(cfg);

        std::vector<Edge> edges;
        const EdgeBatch all = test::randomBatch(200, 4000, 11);
        for (std::size_t i = 0; i < all.size(); ++i)
            edges.push_back(all[i]);
        StreamSource stream(edges, 50, StreamSource::kNoShuffle);
        const StreamRun run = driveStream(*runner, stream);
        EXPECT_EQ(run.batches.size(), stream.batchCount());
        EXPECT_GT(runner->numEdges(), 0u);
    }
}

} // namespace
} // namespace saga
