/** @file DAH internals: Robin-Hood table, high-degree tables, promotion. */

#include <set>

#include <gtest/gtest.h>

#include "ds/dah.h"
#include "platform/rng.h"
#include "platform/thread_pool.h"
#include "test_util.h"

namespace saga {
namespace {

TEST(RobinHoodEdgeTable, InsertAndContains)
{
    RobinHoodEdgeTable table;
    table.insert(1, 2, 1.0f);
    table.insert(1, 3, 2.0f);
    table.insert(4, 2, 3.0f);
    EXPECT_TRUE(table.contains(1, 2));
    EXPECT_TRUE(table.contains(1, 3));
    EXPECT_TRUE(table.contains(4, 2));
    EXPECT_FALSE(table.contains(1, 4));
    EXPECT_FALSE(table.contains(2, 1));
    EXPECT_EQ(table.size(), 3u);
}

TEST(RobinHoodEdgeTable, CountKeyAndEnumeration)
{
    RobinHoodEdgeTable table;
    for (NodeId d = 0; d < 20; ++d)
        table.insert(7, d, static_cast<Weight>(d));
    table.insert(8, 0, 1.0f);
    EXPECT_EQ(table.countKey(7), 20u);
    EXPECT_EQ(table.countKey(8), 1u);
    EXPECT_EQ(table.countKey(9), 0u);

    std::set<NodeId> seen;
    table.forEachOfKey(7, [&](NodeId dst, Weight w) {
        EXPECT_EQ(w, static_cast<Weight>(dst));
        seen.insert(dst);
    });
    EXPECT_EQ(seen.size(), 20u);
}

TEST(RobinHoodEdgeTable, RemoveKeyLeavesOthersIntact)
{
    RobinHoodEdgeTable table;
    for (NodeId s = 0; s < 50; ++s) {
        for (NodeId d = 0; d < 4; ++d)
            table.insert(s, d, 1.0f);
    }
    table.removeKey(25);
    EXPECT_EQ(table.countKey(25), 0u);
    EXPECT_EQ(table.size(), 49u * 4);
    for (NodeId s = 0; s < 50; ++s) {
        if (s != 25) {
            EXPECT_EQ(table.countKey(s), 4u) << "s=" << s;
        }
    }
}

TEST(RobinHoodEdgeTable, GrowsUnderLoad)
{
    RobinHoodEdgeTable table;
    const std::size_t initial_capacity = table.capacity();
    for (NodeId s = 0; s < 2000; ++s)
        table.insert(s, s + 1, 1.0f);
    EXPECT_GT(table.capacity(), initial_capacity);
    for (NodeId s = 0; s < 2000; ++s)
        ASSERT_TRUE(table.contains(s, s + 1)) << "s=" << s;
}

TEST(RobinHoodEdgeTable, RandomizedVsStdSet)
{
    RobinHoodEdgeTable table;
    std::set<std::pair<NodeId, NodeId>> oracle;
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const NodeId s = static_cast<NodeId>(rng.below(64));
        const NodeId d = static_cast<NodeId>(rng.below(64));
        if (!oracle.insert({s, d}).second)
            continue; // table is a no-dup-check multimap; skip dups
        table.insert(s, d, 1.0f);
    }
    EXPECT_EQ(table.size(), oracle.size());
    for (NodeId s = 0; s < 64; ++s) {
        for (NodeId d = 0; d < 64; ++d) {
            EXPECT_EQ(table.contains(s, d), oracle.count({s, d}) > 0)
                << s << "->" << d;
        }
    }
}

TEST(HighDegreeTable, InsertUniqueAndGrowth)
{
    HighDegreeTable table(4);
    for (NodeId d = 0; d < 300; ++d)
        EXPECT_TRUE(table.insertUnique(d, static_cast<Weight>(d)));
    for (NodeId d = 0; d < 300; ++d)
        EXPECT_FALSE(table.insertUnique(d, 1e9f)); // dup keeps min weight
    EXPECT_EQ(table.size(), 300u);
    std::set<NodeId> seen;
    table.forAll([&](const Neighbor &nbr) {
        EXPECT_EQ(nbr.weight, static_cast<Weight>(nbr.node));
        seen.insert(nbr.node);
    });
    EXPECT_EQ(seen.size(), 300u);
}

TEST(DahStore, PromotesVerticesCrossingThreshold)
{
    DahConfig config;
    config.promoteThreshold = 8;
    config.flushPeriod = 1u << 30; // only end-of-batch flush
    DahStore store(1, config);
    ThreadPool pool(1);

    std::vector<Edge> edges;
    for (NodeId d = 0; d < 30; ++d)
        edges.push_back({0, d + 1, 1.0f}); // vertex 0 crosses threshold
    edges.push_back({1, 2, 1.0f});         // vertex 1 stays low
    store.updateBatch(EdgeBatch(std::move(edges)), pool, false);

    EXPECT_EQ(store.numHighDegreeVertices(), 1u);
    EXPECT_EQ(store.degree(0), 30u);
    EXPECT_EQ(store.degree(1), 1u);
    EXPECT_EQ(test::sortedNeighbors(store, 0).size(), 30u);
}

TEST(DahStore, PeriodicFlushDuringBatch)
{
    DahConfig config;
    config.promoteThreshold = 4;
    config.flushPeriod = 8; // flush every 8 inserts
    DahStore store(1, config);
    ThreadPool pool(1);

    std::vector<Edge> edges;
    for (NodeId d = 0; d < 64; ++d)
        edges.push_back({0, d + 1, 1.0f});
    store.updateBatch(EdgeBatch(std::move(edges)), pool, false);

    EXPECT_EQ(store.numHighDegreeVertices(), 1u);
    EXPECT_EQ(store.degree(0), 64u);
}

TEST(DahStore, DedupAcrossPromotion)
{
    DahConfig config;
    config.promoteThreshold = 4;
    DahStore store(1, config);
    ThreadPool pool(1);

    // Insert 0->1..6 (promotes at 4), then re-insert all of them.
    std::vector<Edge> edges;
    for (NodeId d = 1; d <= 6; ++d)
        edges.push_back({0, d, 1.0f});
    store.updateBatch(EdgeBatch(edges), pool, false);
    store.updateBatch(EdgeBatch(edges), pool, false);
    EXPECT_EQ(store.degree(0), 6u);
    EXPECT_EQ(store.numEdges(), 6u);
}

TEST(DahStore, ChunkOwnershipPartition)
{
    // Hash partitioning: stable, in range, and reasonably balanced.
    DahStore store(4);
    std::vector<int> counts(4, 0);
    for (NodeId v = 0; v < 4000; ++v) {
        const NodeId c = store.chunkOf(v);
        ASSERT_LT(c, 4u);
        EXPECT_EQ(c, store.chunkOf(v)); // deterministic
        ++counts[c];
    }
    for (int c : counts)
        EXPECT_GT(c, 700); // no chunk starves
}

TEST(DahStore, ManyHighDegreeVertices)
{
    DahConfig config;
    config.promoteThreshold = 8;
    DahStore store(2, config);
    ThreadPool pool(2);

    std::vector<Edge> edges;
    for (NodeId s = 0; s < 40; ++s) {
        for (NodeId d = 0; d < 20; ++d)
            edges.push_back({s, 100 + d, 1.0f});
    }
    store.updateBatch(EdgeBatch(std::move(edges)), pool, false);
    EXPECT_EQ(store.numHighDegreeVertices(), 40u);
    for (NodeId s = 0; s < 40; ++s)
        EXPECT_EQ(store.degree(s), 20u);
}

} // namespace
} // namespace saga
