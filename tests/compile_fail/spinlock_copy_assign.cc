// Negative-compile case: SpinLock copy-assignment is deleted (a lock's
// identity is its address; assigning one over another is always a bug).
// Unlike the thread-safety cases this fails under every compiler, so it
// runs even where only GCC is available.

#include "platform/spinlock.h"

int
main()
{
    saga::SpinLock a;
    saga::SpinLock b;
    a = b; // BAD: operator= is deleted
    return 0;
}
