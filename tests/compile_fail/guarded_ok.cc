// Positive control: follows every concurrency contract, so it must
// compile cleanly under -Wthread-safety -Werror. If this file fails, an
// annotation somewhere became over-restrictive.

#include "ds/adj_chunked.h"
#include "platform/spinlock.h"

namespace {

struct Counter
{
    saga::SpinLock lock;
    int value SAGA_GUARDED_BY(lock) = 0;
};

int
bumpWithLock(Counter &counter)
{
    saga::SpinGuard hold(counter.lock);
    counter.value += 1;
    return counter.value;
}

int
bumpExplicit(Counter &counter)
{
    counter.lock.lock();
    counter.value += 1;
    const int seen = counter.value;
    counter.lock.unlock();
    return seen;
}

} // namespace

int
main()
{
    Counter counter;
    bumpWithLock(counter);
    bumpExplicit(counter);

    saga::AdjChunkedStore store(1);
    store.ensureNodes(2);
    store.declareChunksOwned(); // quiescent single-threaded caller
    return store.insertOwned(0, 1, 1.0f) ? 0 : 1;
}
