// The TSA blind spot that saga_analyze rule pack 3 exists to close.
//
// This store-shaped class has a mutable member with NO concurrency
// category at all — not SAGA_GUARDED_BY, not atomic, not chunk-owned —
// and racyBump() mutates it with no lock held. Clang Thread Safety
// Analysis is opt-in per member: with no annotation there is no
// contract to violate, so this file compiles CLEANLY under
// -Wthread-safety -Werror. The ctest case is therefore a compile-PASS
// control (not WILL_FAIL): it proves the compiler cannot reject an
// unannotated member, which is exactly why guarded/unannotated-member
// is enforced by the analyzer instead (see
// tests/analyze_fixtures/bad_guarded_member.cc for the failing side).
//
// If this file ever FAILS to compile, the toolchain has grown a way to
// demand whole-class annotation coverage — move the enforcement there
// and retire the analyzer rule.

#include "platform/spinlock.h"
#include "platform/thread_annotations.h"

namespace {

struct UnannotatedStore
{
    saga::SpinLock lock;
    int guarded SAGA_GUARDED_BY(lock) = 0;
    // No category: invisible to -Wthread-safety, caught only by
    // saga_analyze guarded/unannotated-member.
    int unannotated = 0;
};

int
racyBump(UnannotatedStore &store)
{
    store.unannotated += 1; // no lock held; TSA has nothing to check
    return store.unannotated;
}

} // namespace

int
main()
{
    UnannotatedStore store;
    return racyBump(store) == 1 ? 0 : 1;
}
