// Negative-compile case: calling AdjChunkedStore::insertOwned() without
// first declaring chunk ownership (declareChunksOwned()) must be rejected
// — insertOwned is annotated SAGA_REQUIRES(ownership_).

#include "ds/adj_chunked.h"

int
main()
{
    saga::AdjChunkedStore store(1);
    store.ensureNodes(2);
    // BAD: the ChunkOwnership capability was never asserted on this path.
    return store.insertOwned(0, 1, 1.0f) ? 0 : 1;
}
