// Negative-compile case: writing a SAGA_GUARDED_BY field without holding
// its lock must be rejected by -Wthread-safety.

#include "platform/spinlock.h"

namespace {

struct Counter
{
    saga::SpinLock lock;
    int value SAGA_GUARDED_BY(lock) = 0;
};

int
bumpWithoutLock(Counter &counter)
{
    counter.value += 1; // BAD: `lock` is not held
    return counter.value;
}

} // namespace

int
main()
{
    Counter counter;
    return bumpWithoutLock(counter);
}
