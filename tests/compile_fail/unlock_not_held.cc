// Negative-compile case: releasing a SpinLock that is not held must be
// rejected — unlock() is annotated SAGA_RELEASE().

#include "platform/spinlock.h"

int
main()
{
    saga::SpinLock lock;
    lock.unlock(); // BAD: releasing a capability this scope never acquired
    return 0;
}
