/** @file INC engine unit tests (Algorithm 1 mechanics). */

#include <gtest/gtest.h>

#include "algo/bfs.h"
#include "algo/inc_engine.h"
#include "algo/pr.h"
#include "ds/dyn_graph.h"
#include "ds/reference.h"
#include "platform/thread_pool.h"
#include "test_util.h"

namespace saga {
namespace {

TEST(AffectedVertices, UniqueEndpoints)
{
    const EdgeBatch batch({{0, 1, 1.0f}, {1, 2, 1.0f}, {0, 2, 1.0f}});
    const auto affected = affectedVertices(batch, 3);
    EXPECT_EQ(affected.size(), 3u);
}

TEST(AffectedVertices, IgnoresOutOfRange)
{
    const EdgeBatch batch({{0, 9, 1.0f}});
    const auto affected = affectedVertices(batch, 5); // 9 out of range
    ASSERT_EQ(affected.size(), 1u);
    EXPECT_EQ(affected[0], 0u);
}

TEST(AffectedVertices, EmptyBatch)
{
    EXPECT_TRUE(affectedVertices(EdgeBatch(), 10).empty());
}

TEST(IncEngine, InitializesNewVertices)
{
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(1);
    g.update(EdgeBatch({{0, 1, 1.0f}}), pool);

    AlgContext ctx;
    std::vector<Bfs::Value> values; // empty: everything is new
    incCompute<Bfs>(g, pool, values,
                    affectedVertices(EdgeBatch({{0, 1, 1.0f}}), 2), ctx);
    ASSERT_EQ(values.size(), 2u);
    EXPECT_EQ(values[0], 0u);
    EXPECT_EQ(values[1], 1u);
}

TEST(IncEngine, NoTriggerMeansNoWork)
{
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(1);
    g.update(EdgeBatch({{0, 1, 1.0f}}), pool);

    AlgContext ctx;
    std::vector<Bfs::Value> values;
    const auto affected = affectedVertices(EdgeBatch({{0, 1, 1.0f}}), 2);
    incCompute<Bfs>(g, pool, values, affected, ctx);
    const auto snapshot = values;

    // Re-ingesting a duplicate edge affects the same vertices but changes
    // nothing: values stay identical.
    g.update(EdgeBatch({{0, 1, 1.0f}}), pool);
    incCompute<Bfs>(g, pool, values, affected, ctx);
    EXPECT_EQ(values, snapshot);
}

TEST(IncEngine, PropagatesThroughLongChain)
{
    // Chain 0 -> 1 -> ... -> 49 built one edge at a time: each new edge
    // must propagate a depth to exactly one new vertex.
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(2);
    AlgContext ctx;
    std::vector<Bfs::Value> values;
    for (NodeId v = 0; v + 1 < 50; ++v) {
        const EdgeBatch batch({{v, v + 1, 1.0f}});
        g.update(batch, pool);
        incCompute<Bfs>(g, pool, values,
                        affectedVertices(batch, g.numNodes()), ctx);
    }
    ASSERT_EQ(values.size(), 50u);
    for (NodeId v = 0; v < 50; ++v)
        EXPECT_EQ(values[v], v);
}

TEST(IncEngine, ShortcutLowersDownstreamDepths)
{
    // Build a long chain, then add a shortcut from the source to its
    // middle: the whole downstream half must drop.
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(2);
    AlgContext ctx;
    std::vector<Bfs::Value> values;

    std::vector<Edge> chain;
    for (NodeId v = 0; v + 1 < 40; ++v)
        chain.push_back({v, v + 1, 1.0f});
    const EdgeBatch batch(std::move(chain));
    g.update(batch, pool);
    incCompute<Bfs>(g, pool, values, affectedVertices(batch, 40), ctx);
    EXPECT_EQ(values[39], 39u);

    const EdgeBatch shortcut({{0, 20, 1.0f}});
    g.update(shortcut, pool);
    incCompute<Bfs>(g, pool, values, affectedVertices(shortcut, 40), ctx);
    EXPECT_EQ(values[20], 1u);
    EXPECT_EQ(values[39], 20u); // 1 + 19 remaining hops
}

TEST(IncEngine, PrEpsilonSuppressesTinyChanges)
{
    DynGraph<ReferenceStore> g(true);
    ThreadPool pool(1);
    AlgContext ctx;
    ctx.epsilon = 1e9; // absurdly large: nothing ever triggers

    const EdgeBatch batch({{0, 1, 1.0f}, {1, 2, 1.0f}});
    g.update(batch, pool);
    std::vector<Pr::Value> values;
    incCompute<Pr>(g, pool, values, affectedVertices(batch, 3), ctx);
    // All vertices keep their init value 1/|V|.
    ASSERT_EQ(values.size(), 3u);
    for (double v : values)
        EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
}

} // namespace
} // namespace saga
