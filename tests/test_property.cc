/**
 * @file
 * Property sweeps over the real dataset profiles: every algorithm, on
 * every (down-scaled) profile, must satisfy the INC==FS invariant at the
 * end of the stream, and the per-algorithm result invariants must hold on
 * the final values (triangle-inequality-style checks rather than value
 * comparisons — these catch errors both models could share).
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include <gtest/gtest.h>

#include "gen/profiles.h"
#include "saga/driver.h"
#include "saga/stream_source.h"

namespace saga {
namespace {

struct ProfileAlg
{
    const char *profile;
    AlgKind alg;
};

std::string
caseName(const ::testing::TestParamInfo<ProfileAlg> &info)
{
    return std::string(info.param.profile) + "_" +
           toString(info.param.alg);
}

class ProfileSweep : public ::testing::TestWithParam<ProfileAlg>
{
  protected:
    /** Stream the whole scaled profile through a runner. */
    static std::unique_ptr<StreamingRunner>
    runAll(const DatasetProfile &profile, ModelKind model, AlgKind alg)
    {
        RunConfig cfg;
        cfg.ds = profile.heavyTailed ? DsKind::DAH : DsKind::AS;
        cfg.alg = alg;
        cfg.model = model;
        cfg.directed = profile.directed;
        cfg.ctx.source = profile.source;
        cfg.threads = 2;
        auto runner = makeRunner(cfg);
        StreamSource stream(profile.generate(3), profile.batchSize, 3);
        while (stream.hasNext())
            runner->processBatch(stream.next());
        return runner;
    }
};

TEST_P(ProfileSweep, IncMatchesFsAtEndOfStream)
{
    const ProfileAlg param = GetParam();
    const DatasetProfile profile =
        findProfile(param.profile)->scaled(0.08);

    auto inc = runAll(profile, ModelKind::INC, param.alg);
    auto fs = runAll(profile, ModelKind::FS, param.alg);
    const std::vector<double> vi = inc->values();
    const std::vector<double> vf = fs->values();
    ASSERT_EQ(vi.size(), vf.size());
    ASSERT_EQ(inc->numEdges(), fs->numEdges());

    if (param.alg == AlgKind::PR) {
        // PR is epsilon-approximate under INC: compare mean and max
        // per-vertex deviation (raw L1 grows with |V|).
        double l1 = 0, max_diff = 0;
        for (std::size_t v = 0; v < vi.size(); ++v) {
            const double d = std::fabs(vi[v] - vf[v]);
            l1 += d;
            max_diff = std::max(max_diff, d);
        }
        EXPECT_LT(l1 / double(vi.size()), 2e-4);
        EXPECT_LT(max_diff, 5e-3);
    } else {
        for (std::size_t v = 0; v < vi.size(); ++v) {
            if (std::isinf(vf[v]))
                EXPECT_TRUE(std::isinf(vi[v])) << "v=" << v;
            else
                EXPECT_EQ(vi[v], vf[v]) << "v=" << v;
        }
    }
}

TEST_P(ProfileSweep, ResultInvariantsHold)
{
    const ProfileAlg param = GetParam();
    const DatasetProfile profile =
        findProfile(param.profile)->scaled(0.08);
    auto runner = runAll(profile, ModelKind::INC, param.alg);
    const std::vector<double> values = runner->values();

    // Rebuild the edge set for invariant checks. Duplicate (src, dst)
    // pairs can carry different weights and dedup keeps whichever was
    // streamed first, so the weighted invariants use the max (SSSP) or
    // min (SSWP) weight across duplicates.
    std::vector<Edge> edges = profile.generate(3);
    std::unordered_map<std::uint64_t, std::pair<Weight, Weight>> weights;
    for (const Edge &e : edges) {
        const std::uint64_t key =
            (std::uint64_t(e.src) << 32) | e.dst;
        auto [it, fresh] = weights.try_emplace(key, e.weight, e.weight);
        if (!fresh) {
            it->second.first = std::min(it->second.first, e.weight);
            it->second.second = std::max(it->second.second, e.weight);
        }
    }
    const auto minW = [&](const Edge &e) {
        return weights.at((std::uint64_t(e.src) << 32) | e.dst).first;
    };
    const auto maxW = [&](const Edge &e) {
        return weights.at((std::uint64_t(e.src) << 32) | e.dst).second;
    };
    const NodeId n = static_cast<NodeId>(values.size());

    switch (param.alg) {
      case AlgKind::BFS:
        // Every edge relaxes: depth(dst) <= depth(src) + 1.
        EXPECT_EQ(values[profile.source], 0);
        for (const Edge &e : edges) {
            if (!std::isinf(values[e.src])) {
                EXPECT_LE(values[e.dst], values[e.src] + 1)
                    << e.src << "->" << e.dst;
            }
        }
        break;
      case AlgKind::SSSP:
        EXPECT_EQ(values[profile.source], 0);
        for (const Edge &e : edges) {
            if (!std::isinf(values[e.src])) {
                EXPECT_LE(values[e.dst],
                          values[e.src] + maxW(e) + 1e-3)
                    << e.src << "->" << e.dst;
            }
        }
        break;
      case AlgKind::SSWP:
        for (const Edge &e : edges) {
            // Width into dst is at least min(width(src), w_kept); the
            // kept duplicate weight is at least the min across dups.
            EXPECT_GE(values[e.dst] + 1e-3,
                      std::min(values[e.src], double(minW(e))))
                << e.src << "->" << e.dst;
        }
        break;
      case AlgKind::CC:
        // Endpoints of every edge share a label; labels are <= own id.
        for (const Edge &e : edges)
            EXPECT_EQ(values[e.src], values[e.dst])
                << e.src << "->" << e.dst;
        for (NodeId v = 0; v < n; ++v)
            EXPECT_LE(values[v], v);
        break;
      case AlgKind::MC:
        // Value flows along every edge; value >= own id.
        for (const Edge &e : edges)
            EXPECT_GE(values[e.dst], values[e.src]);
        for (NodeId v = 0; v < n; ++v)
            EXPECT_GE(values[v], double(v));
        break;
      case AlgKind::PR: {
        // Ranks positive, bounded by 1, sum in (0, 1].
        double sum = 0;
        for (NodeId v = 0; v < n; ++v) {
            EXPECT_GT(values[v], 0.0);
            EXPECT_LE(values[v], 1.0);
            sum += values[v];
        }
        EXPECT_GT(sum, 0.1);
        // INC PageRank is epsilon-approximate and |V| grows while ranks
        // are amortized, so the mass can overshoot 1 slightly.
        EXPECT_LE(sum, 1.01);
        break;
      }
    }
}

std::vector<ProfileAlg>
allCases()
{
    std::vector<ProfileAlg> cases;
    for (const char *profile : {"lj", "orkut", "rmat", "wiki", "talk"}) {
        for (AlgKind alg : {AlgKind::BFS, AlgKind::CC, AlgKind::MC,
                            AlgKind::PR, AlgKind::SSSP, AlgKind::SSWP})
            cases.push_back({profile, alg});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileSweep,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace saga
