/**
 * @file
 * Shared helpers for the SAGA-Bench test suite.
 */

#ifndef SAGA_TESTS_TEST_UTIL_H_
#define SAGA_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "ds/reference.h"
#include "platform/rng.h"
#include "saga/edge_batch.h"
#include "saga/types.h"

namespace saga {
namespace test {

/** Random batch of @p count edges over @p num_nodes vertices. */
inline EdgeBatch
randomBatch(NodeId num_nodes, std::size_t count, std::uint64_t seed,
            std::uint32_t weight_max = 64)
{
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(num_nodes));
        const NodeId dst = static_cast<NodeId>(rng.below(num_nodes));
        // Weight is a pure function of (src, dst): duplicate edges always
        // carry the same weight, so parallel dedup stays deterministic.
        const Weight weight = static_cast<Weight>(
            (src * 2654435761u + dst * 40503u) % weight_max + 1);
        edges.push_back({src, dst, weight});
    }
    return EdgeBatch(std::move(edges));
}

/** Sorted copy of a store's neighbor list for @p v. */
template <typename Store>
std::vector<Neighbor>
sortedNeighbors(const Store &store, NodeId v)
{
    std::vector<Neighbor> result;
    store.forNeighbors(v, [&](const Neighbor &nbr) {
        result.push_back(nbr);
    });
    std::sort(result.begin(), result.end(),
              [](const Neighbor &a, const Neighbor &b) {
                  return a.node < b.node;
              });
    return result;
}

/** Sorted out-neighbors via a DynGraph. */
template <typename Graph>
std::vector<Neighbor>
sortedOut(const Graph &g, NodeId v)
{
    std::vector<Neighbor> result;
    g.outNeigh(v, [&](const Neighbor &nbr) { result.push_back(nbr); });
    std::sort(result.begin(), result.end(),
              [](const Neighbor &a, const Neighbor &b) {
                  return a.node < b.node;
              });
    return result;
}

/** Sorted in-neighbors via a DynGraph. */
template <typename Graph>
std::vector<Neighbor>
sortedIn(const Graph &g, NodeId v)
{
    std::vector<Neighbor> result;
    g.inNeigh(v, [&](const Neighbor &nbr) { result.push_back(nbr); });
    std::sort(result.begin(), result.end(),
              [](const Neighbor &a, const Neighbor &b) {
                  return a.node < b.node;
              });
    return result;
}

} // namespace test
} // namespace saga

#endif // SAGA_TESTS_TEST_UTIL_H_
