/** @file Driver/registry/experiment integration tests. */

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "saga/experiment.h"
#include "saga/stream_source.h"
#include "test_util.h"

namespace saga {
namespace {

TEST(EnumNames, RoundTrip)
{
    for (DsKind ds : {DsKind::AS, DsKind::AC, DsKind::Stinger, DsKind::DAH,
          DsKind::Hybrid})
        EXPECT_EQ(parseDs(toString(ds)), ds);
    for (AlgKind alg : {AlgKind::BFS, AlgKind::CC, AlgKind::MC, AlgKind::PR,
                        AlgKind::SSSP, AlgKind::SSWP})
        EXPECT_EQ(parseAlg(toString(alg)), alg);
    for (ModelKind m : {ModelKind::FS, ModelKind::INC})
        EXPECT_EQ(parseModel(toString(m)), m);
    EXPECT_THROW(parseDs("csr"), std::invalid_argument);
    EXPECT_THROW(parseAlg("pagerank!"), std::invalid_argument);
    EXPECT_THROW(parseModel("static"), std::invalid_argument);
}

TEST(Runner, ProcessBatchReportsLatenciesAndSizes)
{
    RunConfig cfg;
    cfg.ds = DsKind::AS;
    cfg.alg = AlgKind::CC;
    cfg.model = ModelKind::INC;
    cfg.threads = 2;
    auto runner = makeRunner(cfg);

    const EdgeBatch batch = test::randomBatch(100, 400, 1);
    const BatchResult result = runner->processBatch(batch);
    EXPECT_EQ(result.batchEdges, 400u);
    EXPECT_GT(result.graphEdges, 0u);
    EXPECT_GT(result.graphNodes, 0u);
    EXPECT_GE(result.updateSeconds, 0.0);
    EXPECT_GE(result.computeSeconds, 0.0);
    EXPECT_DOUBLE_EQ(result.totalSeconds(),
                     result.updateSeconds + result.computeSeconds);
}

TEST(Runner, AllTwentyFourCombosRunOneBatch)
{
    for (DsKind ds :
         {DsKind::AS, DsKind::AC, DsKind::Stinger, DsKind::DAH,
          DsKind::Hybrid}) {
        for (AlgKind alg : {AlgKind::BFS, AlgKind::CC, AlgKind::MC,
                            AlgKind::PR, AlgKind::SSSP, AlgKind::SSWP}) {
            RunConfig cfg;
            cfg.ds = ds;
            cfg.alg = alg;
            cfg.model = ModelKind::INC;
            cfg.threads = 2;
            auto runner = makeRunner(cfg);
            runner->processBatch(test::randomBatch(50, 200, 3));
            EXPECT_GT(runner->numEdges(), 0u)
                << toString(ds) << "/" << toString(alg);
            EXPECT_EQ(runner->values().size(), runner->numNodes());
        }
    }
}

TEST(Runner, GraphIdenticalAcrossDataStructures)
{
    // Same stream into all four structures must produce the same graph.
    std::vector<std::unique_ptr<StreamingRunner>> runners;
    for (DsKind ds :
         {DsKind::AS, DsKind::AC, DsKind::Stinger, DsKind::DAH,
          DsKind::Hybrid}) {
        RunConfig cfg;
        cfg.ds = ds;
        cfg.alg = AlgKind::BFS;
        cfg.threads = 3;
        runners.push_back(makeRunner(cfg));
    }
    for (int b = 0; b < 4; ++b) {
        const EdgeBatch batch = test::randomBatch(300, 2000, 70 + b);
        for (auto &runner : runners)
            runner->processBatch(batch);
    }
    for (std::size_t i = 1; i < runners.size(); ++i) {
        EXPECT_EQ(runners[i]->numNodes(), runners[0]->numNodes());
        EXPECT_EQ(runners[i]->numEdges(), runners[0]->numEdges());
        EXPECT_EQ(runners[i]->values(), runners[0]->values());
    }
}

TEST(Experiment, RunStreamCoversWholeDataset)
{
    const DatasetProfile profile = findProfile("talk")->scaled(0.1);
    RunConfig cfg;
    cfg.ds = DsKind::DAH;
    cfg.alg = AlgKind::BFS;
    cfg.model = ModelKind::INC;
    cfg.threads = 2;
    const StreamRun run = runStream(profile, cfg, 1);
    EXPECT_EQ(run.batches.size(), profile.batchCount());
    std::uint64_t streamed = 0;
    for (const BatchResult &b : run.batches)
        streamed += b.batchEdges;
    EXPECT_EQ(streamed, profile.numEdges);
    // Edges accumulate monotonically.
    for (std::size_t i = 1; i < run.batches.size(); ++i)
        EXPECT_GE(run.batches[i].graphEdges, run.batches[i - 1].graphEdges);
    EXPECT_EQ(run.totalLatencies().size(), run.batches.size());
}

TEST(Experiment, MeasureWorkloadPoolsStages)
{
    const DatasetProfile profile = findProfile("talk")->scaled(0.08);
    RunConfig cfg;
    cfg.ds = DsKind::AS;
    cfg.alg = AlgKind::MC;
    cfg.model = ModelKind::FS;
    cfg.threads = 1;
    const WorkloadStages stages = measureWorkload(profile, cfg, 2);
    const std::size_t n = profile.batchCount();
    EXPECT_EQ(stages.total.p1.count + stages.total.p2.count +
                  stages.total.p3.count,
              2 * n);
    EXPECT_GE(stages.update.p1.mean, 0.0);
    EXPECT_GE(stages.compute.p3.mean, 0.0);
}

TEST(Experiment, BenchKnobsDefaults)
{
    // Without env overrides these return the documented defaults.
    if (!std::getenv("SAGA_SCALE")) {
        EXPECT_DOUBLE_EQ(benchScale(), 1.0);
    }
    if (!std::getenv("SAGA_REPS")) {
        EXPECT_EQ(benchReps(), 1);
    }
}

TEST(Runner, ValuesSizedToGraphAfterIngestGrowsIt)
{
    // Regression: values() used to return values_.size() entries, so an
    // update that grew the graph left it shorter than numNodes() until
    // the next compute ran.
    RunConfig cfg;
    cfg.ds = DsKind::AS;
    cfg.alg = AlgKind::PR;
    cfg.model = ModelKind::FS;
    cfg.threads = 2;
    auto runner = makeRunner(cfg);
    runner->processBatch(test::randomBatch(50, 200, 5));
    const std::size_t before = runner->numNodes();
    ASSERT_EQ(runner->values().size(), before);

    // Grow the vertex range without computing.
    runner->updatePhase(EdgeBatch({{NodeId{80}, NodeId{90}, 1.0f}}));
    ASSERT_GT(runner->numNodes(), before);
    const std::vector<double> values = runner->values();
    ASSERT_EQ(values.size(), runner->numNodes());
    // The never-computed tail is zero-filled.
    for (std::size_t v = before; v < values.size(); ++v)
        EXPECT_EQ(values[v], 0.0) << "vertex " << v;
}

TEST(Experiment, UpdateSharePctGuardsDegenerateStages)
{
    // Empty stages (no samples pooled at all) must yield 0, not NaN.
    WorkloadStages empty;
    for (int stage = 1; stage <= 3; ++stage) {
        const double pct = empty.updateSharePct(stage);
        EXPECT_TRUE(std::isfinite(pct)) << "stage " << stage;
        EXPECT_EQ(pct, 0.0) << "stage " << stage;
    }
    EXPECT_EQ(empty.degenerateShareCalls, 3u);

    // A stream too short to populate all three stages: the empty stages
    // fall back to 0 and are recorded; the populated ones stay finite.
    const DatasetProfile profile = findProfile("talk")->scaled(0.02);
    RunConfig cfg;
    cfg.ds = DsKind::AS;
    cfg.alg = AlgKind::MC;
    cfg.model = ModelKind::FS;
    cfg.threads = 1;
    const WorkloadStages stages = measureWorkload(profile, cfg, 1);
    for (int stage = 1; stage <= 3; ++stage)
        EXPECT_TRUE(std::isfinite(stages.updateSharePct(stage)))
            << "stage " << stage;
}

TEST(Experiment, StreamSourceRemainderBatchAccounting)
{
    // 10 edges in batches of 4: batchCount must say 3 (4+4+2), and the
    // stream must actually yield exactly that.
    std::vector<Edge> edges;
    for (NodeId i = 0; i < 10; ++i)
        edges.push_back({i, i + 1, 1.0f});
    StreamSource stream(edges, 4, StreamSource::kNoShuffle);
    EXPECT_EQ(stream.batchCount(), 3u);

    std::vector<std::size_t> sizes;
    while (stream.hasNext())
        sizes.push_back(stream.next().size());
    ASSERT_EQ(sizes.size(), stream.batchCount());
    EXPECT_EQ(sizes[0], 4u);
    EXPECT_EQ(sizes[1], 4u);
    EXPECT_EQ(sizes[2], 2u);

    // And through the whole driver loop: one BatchResult per promised
    // batch, remainder included.
    stream.rewind();
    RunConfig cfg;
    cfg.ds = DsKind::AC;
    cfg.alg = AlgKind::CC;
    cfg.threads = 2;
    auto runner = makeRunner(cfg);
    const StreamRun run = driveStream(*runner, stream);
    EXPECT_EQ(run.batches.size(), stream.batchCount());
    EXPECT_EQ(run.batches.back().batchEdges, 2u);
}

TEST(Runner, ValuesMatchAcrossThreadCounts)
{
    // Parallel compute must not change results (CC: deterministic min).
    RunConfig cfg1, cfg4;
    cfg1.ds = DsKind::AS;
    cfg1.alg = AlgKind::CC;
    cfg1.model = ModelKind::INC;
    cfg1.threads = 1;
    cfg4 = cfg1;
    cfg4.threads = 4;
    auto r1 = makeRunner(cfg1);
    auto r4 = makeRunner(cfg4);
    for (int b = 0; b < 4; ++b) {
        const EdgeBatch batch = test::randomBatch(200, 800, 7 + b);
        r1->processBatch(batch);
        r4->processBatch(batch);
        EXPECT_EQ(r1->values(), r4->values()) << "batch " << b;
    }
}

} // namespace
} // namespace saga
