/** @file Generator tests: RMAT, power-law + hubs, alias table, profiles. */

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "gen/powerlaw.h"
#include "gen/profiles.h"
#include "gen/rmat.h"
#include "platform/rng.h"

namespace saga {
namespace {

std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>
degreeCounts(const std::vector<Edge> &edges, NodeId n)
{
    std::vector<std::uint64_t> out(n, 0), in(n, 0);
    for (const Edge &e : edges) {
        ++out[e.src];
        ++in[e.dst];
    }
    return {out, in};
}

TEST(Rmat, DeterministicPerSeed)
{
    RmatParams params;
    params.scale = 10;
    params.numEdges = 5000;
    const auto a = generateRmat(params);
    const auto b = generateRmat(params);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    params.seed = 2;
    const auto c = generateRmat(params);
    EXPECT_FALSE(std::equal(a.begin(), a.end(), c.begin()));
}

TEST(Rmat, RespectsScaleAndCount)
{
    RmatParams params;
    params.scale = 8;
    params.numEdges = 3000;
    const auto edges = generateRmat(params);
    EXPECT_EQ(edges.size(), 3000u);
    for (const Edge &e : edges) {
        EXPECT_LT(e.src, 256u);
        EXPECT_LT(e.dst, 256u);
        EXPECT_GE(e.weight, 1.0f);
        EXPECT_LE(e.weight, 64.0f);
    }
}

TEST(Rmat, SkewTowardsLowIds)
{
    // a=0.55 biases both endpoints toward the low-id quadrant.
    RmatParams params;
    params.scale = 12;
    params.numEdges = 40000;
    const auto edges = generateRmat(params);
    std::uint64_t low_half = 0;
    for (const Edge &e : edges)
        low_half += (e.src < 2048);
    // P(src in low half) = a + b = 0.70 at the top level.
    EXPECT_NEAR(double(low_half) / edges.size(), 0.70, 0.03);
}

TEST(AliasTable, MatchesDistribution)
{
    const std::vector<double> weights{1, 2, 3, 4};
    AliasTable table(weights);
    Rng rng(3);
    std::vector<std::uint64_t> counts(4, 0);
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i)
        ++counts[table.sample(rng.uniform(), rng.uniform())];
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(double(counts[i]) / kSamples, weights[i] / 10.0, 0.01)
            << "bucket " << i;
    }
}

TEST(AliasTable, SingleBucket)
{
    AliasTable table({5.0});
    EXPECT_EQ(table.sample(0.3, 0.9), 0u);
}

TEST(PowerLaw, DeterministicAndSized)
{
    PowerLawParams params;
    params.numNodes = 1000;
    params.numEdges = 20000;
    const auto a = generatePowerLaw(params);
    const auto b = generatePowerLaw(params);
    EXPECT_EQ(a.size(), 20000u);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    for (const Edge &e : a) {
        EXPECT_LT(e.src, 1000u);
        EXPECT_LT(e.dst, 1000u);
        EXPECT_NE(e.src, e.dst); // no self loops
    }
}

TEST(PowerLaw, PlantedHubReceivesItsShare)
{
    PowerLawParams params;
    params.numNodes = 2000;
    params.numEdges = 50000;
    params.flattenTopRanks = 32;
    params.hubs = {{7, 0.002, 0.05}}; // 5% of destinations
    const auto edges = generatePowerLaw(params);
    const auto [out, in] = degreeCounts(edges, params.numNodes);
    EXPECT_NEAR(double(in[7]) / edges.size(), 0.05, 0.01);
    // The hub dominates every non-hub vertex's in-degree.
    std::uint64_t max_other = 0;
    for (NodeId v = 0; v < params.numNodes; ++v) {
        if (v != 7)
            max_other = std::max(max_other, in[v]);
    }
    EXPECT_GT(in[7], 3 * max_other);
}

TEST(Profiles, AllFiveExist)
{
    ASSERT_EQ(allProfiles().size(), 5u);
    for (const char *name : {"lj", "orkut", "rmat", "wiki", "talk"})
        EXPECT_NE(findProfile(name), nullptr) << name;
    EXPECT_EQ(findProfile("nope"), nullptr);
}

TEST(Profiles, Table2Signature)
{
    // Size ordering and directedness from the paper's Table II.
    const auto *lj = findProfile("lj");
    const auto *orkut = findProfile("orkut");
    const auto *rmat = findProfile("rmat");
    const auto *wiki = findProfile("wiki");
    const auto *talk = findProfile("talk");

    EXPECT_TRUE(lj->directed);
    EXPECT_FALSE(orkut->directed);
    EXPECT_TRUE(wiki->directed);
    EXPECT_TRUE(talk->directed);

    // RMAT is the largest graph; Talk the smallest with 11 batches.
    EXPECT_GT(rmat->numNodes, lj->numNodes);
    EXPECT_GT(rmat->numEdges, orkut->numEdges);
    EXPECT_EQ(talk->batchCount(), 11u);

    EXPECT_FALSE(lj->heavyTailed);
    EXPECT_FALSE(orkut->heavyTailed);
    EXPECT_FALSE(rmat->heavyTailed);
    EXPECT_TRUE(wiki->heavyTailed);
    EXPECT_TRUE(talk->heavyTailed);
}

TEST(Profiles, GenerateMatchesDeclaredSize)
{
    for (const DatasetProfile &profile : allProfiles()) {
        const auto edges = profile.generate(1);
        EXPECT_EQ(edges.size(), profile.numEdges) << profile.name;
        for (const Edge &e : edges) {
            ASSERT_LT(e.src, profile.numNodes) << profile.name;
            ASSERT_LT(e.dst, profile.numNodes) << profile.name;
        }
    }
}

TEST(Profiles, Table4TailSignature)
{
    // Heavy-tailed profiles must show an order-of-magnitude higher max
    // degree (relative to edge count) than short-tailed ones, on the
    // paper's Table IV axis (wiki: in-degree, talk: out-degree).
    std::map<std::string, double> max_rel_degree;
    for (const DatasetProfile &profile : allProfiles()) {
        const auto edges = profile.generate(1);
        const auto [out, in] = degreeCounts(edges, profile.numNodes);
        const std::uint64_t max_out =
            *std::max_element(out.begin(), out.end());
        const std::uint64_t max_in =
            *std::max_element(in.begin(), in.end());
        max_rel_degree[profile.name] =
            double(std::max(max_out, max_in)) / double(edges.size());
    }
    for (const char *heavy : {"wiki", "talk"}) {
        for (const char *light : {"lj", "orkut", "rmat"}) {
            EXPECT_GT(max_rel_degree[heavy], 5 * max_rel_degree[light])
                << heavy << " vs " << light;
        }
    }
}

TEST(Profiles, ScalingScalesEverything)
{
    const auto *lj = findProfile("lj");
    const DatasetProfile half = lj->scaled(0.5);
    EXPECT_NEAR(double(half.numNodes), lj->numNodes * 0.5, 1);
    EXPECT_NEAR(double(half.numEdges), lj->numEdges * 0.5, 1);
    EXPECT_NEAR(double(half.batchSize), lj->batchSize * 0.5, 1);
    EXPECT_LT(half.source, half.numNodes);

    // Extreme downscale never reaches zero.
    const DatasetProfile tiny = lj->scaled(1e-9);
    EXPECT_GE(tiny.numNodes, 16u);
    EXPECT_GE(tiny.batchSize, 4u);
}

} // namespace
} // namespace saga
