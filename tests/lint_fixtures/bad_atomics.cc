// Seeded violations: atomic-discipline rules. Every construct below must
// be flagged by saga_lint; see README.md in this directory.
#include <cstdint>

// Violates the include-what-you-use rule: names the std atomic types but
// pulls in no header for them.
std::atomic<int> naked_counter{0};

void
bad_kernel(std::atomic<std::uint32_t> &flag, int &slot)
{
    // Raw member ops instead of the platform helpers (kernel sandbox).
    flag.store(1);
    (void)flag.load();
    flag.fetch_add(1);

    // atomic_ref outside platform/atomic_ops.h.
    std::atomic_ref<int> ref(slot);

    // Weak ordering with no justification comment anywhere near.
    ref.store(2, std::memory_order_relaxed);
}
