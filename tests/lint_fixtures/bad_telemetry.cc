// Seeded violations: telemetry macro discipline. SAGA_PHASE/SAGA_COUNT
// must be handed a qualified telemetry::Phase:: / telemetry::Counter::
// enumerator so instrumentation points grep to the closed enums in
// src/telemetry/metrics.h; see README.md in this directory.

enum class Phase { Update };
inline constexpr int kBatchCounter = 0;

void
bad_telemetry(int n)
{
    // Unqualified enumerator — reads like the real thing, greps to nothing.
    SAGA_PHASE(Phase::Update);

    // Not a Counter:: enumerator at all.
    SAGA_COUNT(kBatchCounter, n);
}
