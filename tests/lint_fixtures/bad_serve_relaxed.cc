// Seeded violation: pipeline-no-relaxed in the serving layer's epoch
// handoff. The relaxed load below carries a justification comment, so
// relaxed-needs-reason is satisfied — only pipeline-no-relaxed must
// fire, proving the handoff scope (epoch_gate.h / service.cc) is held
// to the stricter bar than the rest of src/.
#include <atomic>
#include <cstdint>

std::uint64_t
bad_epoch_read(const std::atomic<std::uint64_t> *epoch)
{
    // relaxed: the epoch counter is monotone, a stale read is harmless
    return std::atomic_load_explicit(epoch, std::memory_order_relaxed);
}
