// Seeded violations: per-worker accumulator discipline. Kernel-side
// per-worker arrays sized by pool.size() must be false-sharing safe
// (PaddedAccumulator or an alignas(64) slot type) — a plain std::vector
// packs adjacent workers' hot slots into one cache line and the
// resulting coherence ping-pong erases the parallel speedup the
// edge-balanced slices bought; see README.md in this directory.

void
bad_padded(ThreadPool &pool)
{
    // Eight workers' deltas in one 64-byte line: every += invalidates
    // the line for all of them.
    std::vector<double> worker_delta(pool.size(), 0.0);

    // Per-worker queues: the small-vector headers (ptr/size/cap) still
    // false-share even though the heap payloads do not.
    std::vector<std::vector<NodeId>> local{pool.size()};
}
