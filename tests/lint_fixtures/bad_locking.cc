// Seeded violations: locking / allocation / RNG discipline. Every
// construct below must be flagged by saga_lint; see README.md.
#include <cstdlib>
#include <mutex>

// no-std-mutex: <mutex> primitives instead of platform/spinlock.h.
std::mutex global_mutex;
std::condition_variable global_cv;

// no-volatile: volatile used as a (non-)synchronization primitive.
volatile int spin_flag = 0;

int
bad_setup()
{
    // no-rand: racy global C RNG instead of platform/rng.h.
    srand(42);
    const int jitter = rand();

    // no-pthread: raw pthreads under the platform layer.
    pthread_t tid = 0;
    (void)tid;

    // no-new-array: naked array new in a store-like allocation.
    int *slots = new int[jitter + 1];
    delete[] slots;
    return jitter;
}
