/** @file DynGraph facade: directed in/out symmetry, undirected ingestion. */

#include <gtest/gtest.h>

#include "ds/adj_shared.h"
#include "ds/dyn_graph.h"
#include "ds/reference.h"
#include "platform/thread_pool.h"
#include "test_util.h"

namespace saga {
namespace {

TEST(DynGraph, DirectedKeepsInAndOutCopies)
{
    DynGraph<AdjSharedStore> g(/*directed=*/true);
    ThreadPool pool(2);
    g.update(EdgeBatch({{0, 1, 1.0f}, {0, 2, 2.0f}, {2, 1, 3.0f}}), pool);

    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.outDegree(0), 2u);
    EXPECT_EQ(g.inDegree(0), 0u);
    EXPECT_EQ(g.inDegree(1), 2u);
    EXPECT_EQ(g.outDegree(1), 0u);

    const auto in1 = test::sortedIn(g, 1);
    ASSERT_EQ(in1.size(), 2u);
    EXPECT_EQ(in1[0].node, 0u);
    EXPECT_EQ(in1[1].node, 2u);
    EXPECT_EQ(in1[1].weight, 3.0f);
}

TEST(DynGraph, UndirectedSymmetric)
{
    DynGraph<AdjSharedStore> g(/*directed=*/false);
    ThreadPool pool(2);
    g.update(EdgeBatch({{0, 1, 1.0f}, {1, 2, 2.0f}}), pool);

    EXPECT_EQ(g.outDegree(1), 2u);
    EXPECT_EQ(g.inDegree(1), 2u);
    EXPECT_EQ(test::sortedOut(g, 1), test::sortedIn(g, 1));
    const auto out0 = test::sortedOut(g, 0);
    ASSERT_EQ(out0.size(), 1u);
    EXPECT_EQ(out0[0].node, 1u);
}

TEST(DynGraph, UndirectedDuplicateOppositeOrientation)
{
    DynGraph<AdjSharedStore> g(/*directed=*/false);
    ThreadPool pool(1);
    // {0,1} streamed in both orientations must remain one logical edge
    // (two store entries).
    g.update(EdgeBatch({{0, 1, 1.0f}, {1, 0, 1.0f}}), pool);
    EXPECT_EQ(g.outDegree(0), 1u);
    EXPECT_EQ(g.outDegree(1), 1u);
}

TEST(DynGraph, InOutConsistentOnRandomStream)
{
    DynGraph<AdjSharedStore> g(/*directed=*/true);
    DynGraph<ReferenceStore> oracle(/*directed=*/true);
    ThreadPool pool(4);
    for (int b = 0; b < 5; ++b) {
        const EdgeBatch batch = test::randomBatch(200, 1000, 50 + b);
        g.update(batch, pool);
        oracle.update(batch, pool);
    }
    ASSERT_EQ(g.numNodes(), oracle.numNodes());
    ASSERT_EQ(g.numEdges(), oracle.numEdges());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EXPECT_EQ(test::sortedOut(g, v), test::sortedOut(oracle, v));
        EXPECT_EQ(test::sortedIn(g, v), test::sortedIn(oracle, v));
    }
}

TEST(DynGraph, InNeighborsMirrorOutNeighbors)
{
    DynGraph<AdjSharedStore> g(/*directed=*/true);
    ThreadPool pool(2);
    for (int b = 0; b < 3; ++b)
        g.update(test::randomBatch(100, 600, 10 + b), pool);

    // Every out-edge (u, v) must appear as in-edge (v, u).
    std::uint64_t out_count = 0, in_count = 0;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        g.outNeigh(u, [&](const Neighbor &nbr) {
            ++out_count;
            bool found = false;
            g.inNeigh(nbr.node, [&](const Neighbor &back) {
                found |= (back.node == u && back.weight == nbr.weight);
            });
            EXPECT_TRUE(found) << u << "->" << nbr.node;
        });
        in_count += g.inDegree(u);
    }
    EXPECT_EQ(out_count, in_count);
    EXPECT_EQ(out_count, g.numEdges());
}

} // namespace
} // namespace saga
